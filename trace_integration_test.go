package ppm_test

import (
	"strings"
	"testing"
	"time"

	"ppm"
	"ppm/internal/detord"
)

// traceScenario is the twin of metricsScenario with causal tracing
// around the operations the tracer instruments: a traced snapshot
// flood and a traced stop ride inside the same three-host script,
// including a partition and a crash, and the function returns every
// assembled trace report.
func traceScenario(t *testing.T, seed int64) string {
	t.Helper()
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Seed: seed,
		Hosts: []ppm.HostSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c", Type: ppm.SunII},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	c.SetRecoveryList("u", "a", "b", "c")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := sess.RunChild("b", "wb", root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunChild("c", "wc", root); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trace(func() error {
		_, serr := sess.Snapshot()
		return serr
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trace(func() error { return sess.Stop(wb) }); err != nil {
		t.Fatal(err)
	}
	if err := c.Partition([]string{"a", "b"}, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Heal()
	if err := c.Advance(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	return c.TraceReportAll()
}

// TestDeterminismTraceReport: two identically seeded runs must record
// byte-identical span reports — the tracer introduces no
// nondeterminism (no maps, no randomness, no wall clock), and the
// traced paths are themselves deterministic.
func TestDeterminismTraceReport(t *testing.T) {
	a := traceScenario(t, 7)
	b := traceScenario(t, 7)
	if a != b {
		t.Fatalf("same seed produced different trace reports:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
}

// distance2Cluster builds the Table 2 line topology a--net1--gw--net2--c
// and starts a worker on c with no circuit yet from a, so a traced stop
// from a exercises the full cold path: pmd query, dial handshake,
// sibling hello, request, remote control, and the reply — across all
// three hosts.
func distance2Cluster(t *testing.T) (*ppm.Cluster, *ppm.Session, ppm.GPID) {
	t.Helper()
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "gw"}, {Name: "c"}},
		Segments: map[string][]string{
			"net1": {"a", "gw"},
			"net2": {"gw", "c"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sessA, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	sessC, err := c.Attach("u", "c")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sessC.Run("c", "w")
	if err != nil {
		t.Fatal(err)
	}
	return c, sessA, w
}

// TestTraceDistance2Stop: a single stop of a process two hops away
// assembles into one trace tree spanning all three hosts, with kernel,
// dispatcher, handler, circuit and per-hop network spans present.
func TestTraceDistance2Stop(t *testing.T) {
	c, sess, w := distance2Cluster(t)
	id, err := c.Trace(func() error { return sess.Stop(w) })
	if err != nil {
		t.Fatal(err)
	}
	spans := c.Tracer().SpansOf(id)
	if len(spans) == 0 {
		t.Fatal("traced stop recorded no spans")
	}
	hosts := make(map[string]bool)
	names := make(map[string]bool)
	for _, sp := range spans {
		hosts[sp.Host] = true
		names[sp.Name] = true
		if sp.End < sp.Start {
			t.Errorf("span %s on %s ends before it starts: [%v, %v]",
				sp.Name, sp.Host, sp.Start, sp.End)
		}
	}
	for _, h := range []string{"a", "gw", "c"} {
		if !hosts[h] {
			t.Errorf("trace covers no span on host %s (hosts: %v)", h, hosts)
		}
	}
	for _, want := range []string{
		"op.control",          // root: the tool operation
		"circuit.establish.c", // cold-path circuit creation
		"pmd.query.c",         // Figure 2 name-server exchange
		"dispatch.pmd",        // pmd handling on the remote host
		"dispatch.endpoint",   // per-message protocol cost
		"lpm.request.c",       // handler occupancy on the requester
		"dispatch.control",    // control action on the target host
		"kernel.event.stop",   // the kernel's event message
		"exec.tool_leg",       // tool socket legs at the origin
		"net.hop.gw",          // first hop, paid by a
		"net.hop.c",           // second hop, forwarded by the gateway
		"net.reply.gw",        // reply transit, paid by c returning
		"net.reply.a",         // reply's second hop through the gateway
	} {
		if !names[want] {
			t.Errorf("trace missing span %q (got: %v)", want, detord.Keys(names))
		}
	}
	rep := c.TraceReport(id)
	if !strings.Contains(rep, "op.control") || !strings.Contains(rep, "3 hosts") {
		t.Errorf("report lacks root span or host count:\n%s", rep)
	}
}

// TestTraceDistance2StopSpanCount pins the exact number of spans a
// cold distance-2 stop records. A change here means an instrumentation
// point was added, removed, or — the bug this guards against —
// double-counted.
func TestTraceDistance2StopSpanCount(t *testing.T) {
	c, sess, w := distance2Cluster(t)
	id, err := c.Trace(func() error { return sess.Stop(w) })
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Tracer().SpansOf(id)); got != distance2StopSpans {
		t.Errorf("distance-2 stop recorded %d spans, want %d (instrumentation changed?)",
			got, distance2StopSpans)
	}
}

// distance2StopSpans is the pinned span count for the cold distance-2
// stop above: the original 34 plus the two exec.tool_leg spans that
// close the profiler's tool-leg attribution gap.
const distance2StopSpans = 36

// TestUntracedRunsRecordNothing: with tracing never enabled, the whole
// scenario must leave the span buffer empty and put no trace bytes on
// the wire (the opt-in guarantee that keeps untraced runs byte
// identical to the seed).
func TestUntracedRunsRecordNothing(t *testing.T) {
	c, sess, w := distance2Cluster(t)
	if err := sess.Stop(w); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Tracer().Spans()); got != 0 {
		t.Fatalf("untraced run recorded %d spans", got)
	}
	if rep := c.TraceReportAll(); !strings.Contains(rep, "no traces recorded") {
		t.Fatalf("unexpected trace report:\n%s", rep)
	}
}
