package ppm_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ppm"
	"ppm/internal/journal"
	"ppm/internal/lpm"
	"ppm/internal/recovery"
)

// A deterministic chaos soak: hours of virtual time of process
// management interleaved with host crashes, restarts, partitions and
// heals. The test asserts liveness (operations keep completing or fail
// cleanly) and final consistency (after healing, a fresh session sees a
// coherent world).
func TestSoakChaos(t *testing.T) {
	const nHosts = 6
	var hosts []ppm.HostSpec
	var names []string
	for i := 0; i < nHosts; i++ {
		name := fmt.Sprintf("h%d", i)
		hosts = append(hosts, ppm.HostSpec{Name: name})
		names = append(names, name)
	}
	cfg := ppm.ClusterConfig{
		Hosts:           hosts,
		JournalCapacity: 1 << 19, // retain the whole run for the final audit
		LPM: lpm.Config{
			TTL: time.Hour,
			Recovery: recovery.Config{
				TimeToDie:  30 * time.Minute,
				RetryEvery: 20 * time.Second,
				ProbeEvery: 30 * time.Second,
			},
		},
	}
	c, err := ppm.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	c.SetRecoveryList("felipe", "h0", "h1", "h2")
	sess, err := c.Attach("felipe", "h0")
	if err != nil {
		t.Fatal(err)
	}

	// #nosec G404 -- deterministic chaos schedule.
	rng := rand.New(rand.NewSource(7))
	var procs []ppm.GPID
	down := map[string]bool{}
	partitioned := false
	opsOK, opsFailed := 0, 0

	randomHost := func() string { return names[rng.Intn(len(names))] }
	upHost := func() string {
		for i := 0; i < 20; i++ {
			h := randomHost()
			if !down[h] {
				return h
			}
		}
		return "h0"
	}

	for round := 0; round < 120; round++ {
		switch rng.Intn(10) {
		case 0: // crash a host (never the home h0, to keep the driver alive)
			h := randomHost()
			if h != "h0" && !down[h] && len(down) < nHosts/2 {
				if err := c.Crash(h); err != nil {
					t.Fatal(err)
				}
				down[h] = true
			}
		case 1: // restart a crashed host
			for h := range down {
				if err := c.Restart(h); err != nil {
					t.Fatal(err)
				}
				delete(down, h)
				break
			}
		case 2: // partition or heal
			if partitioned {
				c.Heal()
				partitioned = false
			} else if len(down) == 0 {
				if err := c.Partition(names[:nHosts/2], names[nHosts/2:]); err != nil {
					t.Fatal(err)
				}
				partitioned = true
			}
		case 3, 4, 5: // create a process somewhere that is up
			id, err := sess.Run(upHost(), fmt.Sprintf("job%d", round))
			if err == nil {
				procs = append(procs, id)
				opsOK++
			} else {
				opsFailed++
			}
		case 6, 7: // control a random known process
			if len(procs) > 0 {
				id := procs[rng.Intn(len(procs))]
				var err error
				switch rng.Intn(3) {
				case 0:
					err = sess.Stop(id)
				case 1:
					err = sess.Background(id)
				case 2:
					err = sess.Kill(id)
				}
				if err == nil {
					opsOK++
				} else {
					opsFailed++
				}
			}
		case 8: // snapshot
			if _, err := sess.Snapshot(); err == nil {
				opsOK++
			} else {
				opsFailed++
			}
		case 9: // broadcast
			if _, err := sess.StopAll(); err == nil {
				opsOK++
			} else {
				opsFailed++
			}
			if _, err := sess.ContinueAll(); err == nil {
				opsOK++
			}
		}
		if err := c.Advance(time.Duration(rng.Intn(20)+1) * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Liveness: plenty of operations completed despite the chaos.
	if opsOK < 40 {
		t.Fatalf("only %d operations succeeded (%d failed) — the PPM wedged", opsOK, opsFailed)
	}

	// Heal the world, restart everything, and verify consistency.
	c.Heal()
	for h := range down {
		if err := c.Restart(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Advance(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.Attach("felipe", "h0")
	if err != nil {
		t.Fatalf("fresh attach after chaos: %v", err)
	}
	id, err := fresh.Run("h1", "post-chaos")
	if err != nil {
		t.Fatalf("create after chaos: %v", err)
	}
	snap, err := fresh.Snapshot()
	if err != nil {
		t.Fatalf("snapshot after chaos: %v", err)
	}
	if _, ok := snap.Find(id); !ok {
		t.Fatal("post-chaos process missing from snapshot")
	}
	// Every reported process state matches its kernel's view.
	for _, p := range snap.Procs {
		k, err := c.Kernel(p.ID.Host)
		if err != nil {
			t.Fatal(err)
		}
		kp, err := k.Lookup(p.ID.PID)
		if err != nil {
			continue // reaped or lost in a crash; the record is historical
		}
		if kp.State != p.State {
			t.Fatalf("%v: snapshot says %v, kernel says %v", p.ID, p.State, kp.State)
		}
	}
	t.Logf("soak: %d ok, %d failed-clean, %d procs created, final snapshot %d procs (partial=%v)",
		opsOK, opsFailed, len(procs), len(snap.Procs), snap.Partial)

	// The flight recorder watched every one of those ~thousands of
	// events; its invariant auditor must find nothing to complain about.
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Fatalf("journal audit after chaos soak:\n%s", journal.AuditReport(vs))
	}
	t.Logf("soak journal: %d records retained, %d dropped, audit clean",
		c.Journal().Len(), c.Journal().Dropped())
}
