package ppm

import (
	"ppm/internal/config"
)

// Computation is a running instantiation of a configuration-language
// plan: named processes spread over the network, plus the plan's
// event-driven watches.
type Computation struct {
	inst *config.Instance
	plan *config.Plan
}

// ParsePlan parses a computation description in the configuration
// language (see internal/config for the grammar):
//
//	computation build
//	proc coord on vax1 trace all
//	proc cc1   on vax2 parent coord
//	watch exit of cc1 do signal coord SIGUSR1
func ParsePlan(text string) (*config.Plan, error) {
	return config.Parse(text)
}

// Launch parses a plan and instantiates it through this session:
// processes are created in declaration order with the declared
// genealogy and trace levels, and the plan's watches are installed on
// the home LPM.
func (s *Session) Launch(text string) (*Computation, error) {
	plan, err := config.Parse(text)
	if err != nil {
		return nil, err
	}
	return s.LaunchPlan(plan)
}

// LaunchPlan instantiates an already parsed plan.
func (s *Session) LaunchPlan(plan *config.Plan) (*Computation, error) {
	inst, err := plan.Instantiate(s)
	if err != nil {
		return nil, err
	}
	return &Computation{inst: inst, plan: plan}, nil
}

// Lookup returns the network identity of a declared process.
func (c *Computation) Lookup(name string) (GPID, bool) {
	return c.inst.Lookup(name)
}

// Names returns the declared process names in declaration order.
func (c *Computation) Names() []string { return c.inst.Names() }

// Notes returns the actions the plan's watches have taken.
func (c *Computation) Notes() []string { return c.inst.Notes() }

// Close removes the plan's watches; the processes keep running (the
// PPM outlives its tools).
func (c *Computation) Close() { c.inst.Close() }

// Compile-time check: Session satisfies the plan runner interface.
var _ config.Runner = (*Session)(nil)
