package ppm

import (
	"time"

	"ppm/internal/auth"
	"ppm/internal/history"
	"ppm/internal/kernel"
	"ppm/internal/lpm"
	"ppm/internal/proc"
	"ppm/internal/wire"
)

// Re-exported process-model types, so library users need only the ppm
// package for everyday work.
type (
	// GPID is a network-global process identity <host, pid>.
	GPID = proc.GPID
	// PID is a per-host process identifier.
	PID = proc.PID
	// Snapshot is the state of a distributed computation.
	Snapshot = proc.Snapshot
	// Info is the per-process snapshot record.
	Info = proc.Info
	// Event is one kernel-reported process event.
	Event = proc.Event
	// Signal is a software interrupt.
	Signal = proc.Signal
	// TraceMask selects event-tracing granularity.
	TraceMask = kernel.TraceMask
	// HistoryQuery selects preserved events.
	HistoryQuery = history.Query
	// Watch is a history-dependent trigger.
	Watch = history.Watch
	// EventKind classifies kernel-reported process events.
	EventKind = proc.EventKind
	// State is a process state (running, stopped, exited, dead).
	State = proc.State
)

// Re-exported process states.
const (
	Running = proc.Running
	Stopped = proc.Stopped
	Exited  = proc.Exited
	Dead    = proc.Dead
)

// Re-exported event kinds for watches and history queries.
const (
	EvFork    = proc.EvFork
	EvExec    = proc.EvExec
	EvExit    = proc.EvExit
	EvStop    = proc.EvStop
	EvCont    = proc.EvCont
	EvSignal  = proc.EvSignal
	EvSyscall = proc.EvSyscall
	EvIPC     = proc.EvIPC
	EvOpen    = proc.EvOpen
	EvClose   = proc.EvClose
)

// Re-exported signals and trace masks.
const (
	SIGINT  = proc.SIGINT
	SIGKILL = proc.SIGKILL
	SIGTERM = proc.SIGTERM
	SIGSTOP = proc.SIGSTOP
	SIGCONT = proc.SIGCONT
	SIGUSR1 = proc.SIGUSR1
	SIGUSR2 = proc.SIGUSR2

	TraceLifecycle = kernel.TraceLifecycle
	TraceSignals   = kernel.TraceSignals
	TraceSyscalls  = kernel.TraceSyscalls
	TraceIPC       = kernel.TraceIPC
	TraceFiles     = kernel.TraceFiles
	TraceDefault   = kernel.TraceDefault
	TraceAll       = kernel.TraceAll
)

// Session is a user's handle on their Personal Process Manager,
// anchored at the LPM on their home host. All methods are synchronous:
// they drive the virtual clock until the distributed operation
// completes, which makes elapsed virtual time directly measurable
// around any call.
type Session struct {
	c    *Cluster
	user *auth.User
	home string
	mgr  *lpm.LPM
}

// Home returns the session's home host.
func (s *Session) Home() string { return s.home }

// User returns the account name.
func (s *Session) User() string { return s.user.Name }

// Manager returns the underlying home LPM (advanced use: stats,
// recovery state, history store).
func (s *Session) Manager() *lpm.LPM { return s.mgr }

// Run creates a process on any host, adopted by the PPM, with the LPM
// as its logical parent. Within the host this is the paper's 77 ms
// path; on a warm circuit to a remote host, the 177 ms path.
func (s *Session) Run(host, name string) (GPID, error) {
	return s.RunChild(host, name, GPID{})
}

// RunChild creates a process with an explicit logical parent, which may
// live on any host: arbitrary genealogical structure is allowed.
func (s *Session) RunChild(host, name string, parent GPID) (GPID, error) {
	var id GPID
	var rerr error
	done := false
	s.mgr.Create(host, name, parent, func(g GPID, err error) { id, rerr, done = g, err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return GPID{}, err
	}
	return id, rerr
}

// control performs one control operation synchronously.
func (s *Session) control(target GPID, op wire.ControlOp, sig Signal) (wire.ControlResp, error) {
	var resp wire.ControlResp
	var rerr error
	done := false
	s.mgr.Control(target, op, sig, func(r wire.ControlResp, err error) { resp, rerr, done = r, err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return wire.ControlResp{}, err
	}
	if rerr != nil {
		return resp, rerr
	}
	if !resp.OK {
		return resp, &ControlError{Target: target, Op: op.String(), Reason: resp.Reason}
	}
	return resp, nil
}

// ControlError reports a failed control operation.
type ControlError struct {
	Target GPID
	Op     string
	Reason string
}

// Error describes the failure.
func (e *ControlError) Error() string {
	return "ppm: " + e.Op + " " + e.Target.String() + ": " + e.Reason
}

// Stop stops a process anywhere in the network (SIGSTOP via the
// adopted-process control block).
func (s *Session) Stop(target GPID) error {
	_, err := s.control(target, wire.OpStop, 0)
	return err
}

// Foreground resumes a process in the foreground.
func (s *Session) Foreground(target GPID) error {
	_, err := s.control(target, wire.OpForeground, 0)
	return err
}

// Background resumes a process in the background.
func (s *Session) Background(target GPID) error {
	_, err := s.control(target, wire.OpBackground, 0)
	return err
}

// Kill terminates a process anywhere in the network.
func (s *Session) Kill(target GPID) error {
	_, err := s.control(target, wire.OpKill, 0)
	return err
}

// Signal delivers a software interrupt to a process anywhere in the
// network, with no constraints from creation dependencies.
func (s *Session) Signal(target GPID, sig Signal) error {
	_, err := s.control(target, wire.OpSignal, sig)
	return err
}

// broadcastControl floods a control operation to every reachable LPM.
func (s *Session) broadcastControl(op wire.ControlOp, sig Signal) (int, error) {
	var count int
	var rerr error
	done := false
	s.mgr.ControlAll(op, sig, func(n int, err error) { count, rerr, done = n, err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return 0, err
	}
	return count, rerr
}

// StopAll broadcasts a stop to every live process of the user on every
// reachable host and returns how many were affected — the paper's
// "broadcasting, say, a software interrupt to stop execution".
func (s *Session) StopAll() (int, error) {
	return s.broadcastControl(wire.OpStop, 0)
}

// ContinueAll broadcasts a continue (background) everywhere.
func (s *Session) ContinueAll() (int, error) {
	return s.broadcastControl(wire.OpBackground, 0)
}

// KillAll broadcasts a kill everywhere.
func (s *Session) KillAll() (int, error) {
	return s.broadcastControl(wire.OpKill, 0)
}

// SignalAll broadcasts an arbitrary software interrupt everywhere.
func (s *Session) SignalAll(sig Signal) (int, error) {
	return s.broadcastControl(wire.OpSignal, sig)
}

// Snapshot gathers the distributed computation's state over the PPM's
// circuit graph: every known process with its genealogy. Hosts that
// cannot be reached are listed in Snapshot.Partial and the genealogy
// may be a forest.
func (s *Session) Snapshot() (Snapshot, error) {
	var snap Snapshot
	var rerr error
	done := false
	s.mgr.Snapshot(func(sn Snapshot, err error) { snap, rerr, done = sn, err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return Snapshot{}, err
	}
	return snap, rerr
}

// Status gathers a live status report from the user's LPM on every
// host of the installation, originating at this session's LPM. Hosts
// that cannot be reached are listed in ClusterStatus.Unreachable.
func (s *Session) Status() (ClusterStatus, error) {
	var sw ClusterStatus
	var rerr error
	done := false
	s.mgr.StatusSweep(s.c.Hosts(), func(w ClusterStatus, err error) { sw, rerr, done = w, err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return ClusterStatus{}, err
	}
	return sw, rerr
}

// Stats returns the resource-consumption record of a process anywhere
// in the network; for exited processes the record is the one the LPM
// preserved.
func (s *Session) Stats(target GPID) (Info, error) {
	var info Info
	var rerr error
	done := false
	s.mgr.StatsOf(target, func(i Info, err error) { info, rerr, done = i, err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return Info{}, err
	}
	return info, rerr
}

// OpenFiles lists the open descriptors of a process anywhere in the
// network, as "fd:path" strings.
func (s *Session) OpenFiles(target GPID) ([]string, error) {
	var open []string
	var rerr error
	done := false
	s.mgr.FDs(target, func(o []string, err error) { open, rerr, done = o, err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return nil, err
	}
	return open, rerr
}

// HistoryOn queries the preserved event trace of the user's LPM on any
// host: kernel events are recorded by the LPM local to each process, so
// a remote worker's lifecycle lives in that host's trace.
func (s *Session) HistoryOn(host string, q HistoryQuery) ([]Event, error) {
	var evs []Event
	var rerr error
	done := false
	s.mgr.HistoryOf(host, q, func(e []Event, err error) { evs, rerr, done = e, err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return nil, err
	}
	return evs, rerr
}

// Computation returns the snapshot of one distributed computation: the
// subtree rooted at root. The user may manage several computations at
// once; this isolates one of them.
func (s *Session) Computation(root GPID) (Snapshot, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return Snapshot{}, err
	}
	return snap.Subtree(root), nil
}

// History queries the home LPM's preserved event trace.
func (s *Session) History(q HistoryQuery) ([]Event, error) {
	var evs []Event
	var rerr error
	done := false
	s.mgr.HistoryQuery(q, func(e []Event, err error) { evs, rerr, done = e, err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return nil, err
	}
	return evs, rerr
}

// Adopt brings an existing local process (started outside the PPM)
// under management; its descendants are tracked automatically.
func (s *Session) Adopt(pid PID) error {
	var rerr error
	done := false
	s.mgr.Adopt(pid, func(err error) { rerr, done = err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return err
	}
	return rerr
}

// SetTraceMask adjusts the event-tracing granularity of an adopted
// local process (the user-settable granularity that makes the PPM
// usable by a debugger).
func (s *Session) SetTraceMask(pid PID, mask TraceMask) error {
	var rerr error
	done := false
	s.mgr.SetTraceMask(pid, mask, func(err error) { rerr, done = err, true })
	if err := s.c.await(func() bool { return done }); err != nil {
		return err
	}
	return rerr
}

// OnEvent installs a history-dependent trigger on the home LPM: action
// runs whenever a matching event arrives. It returns a handle to
// remove the watch.
func (s *Session) OnEvent(w *Watch) (remove func()) {
	id := s.mgr.AddWatch(w)
	return func() { s.mgr.RemoveWatch(id) }
}

// OnEventAt installs a history-dependent trigger on the user's LPM on
// another host: when an event matching w arrives there, the control
// operation op (with signal sig) is applied to target — which may live
// on any host. This is the paper's "history dependent events ... set by
// users to trigger process state changes", across machine boundaries.
func (s *Session) OnEventAt(host string, w *Watch, op ControlOp,
	sig Signal, target GPID) (remove func(), err error) {
	done := false
	var rerr error
	s.mgr.WatchOn(host, w, wire.ControlOp(op), sig, target, func(rm func(), werr error) {
		remove, rerr, done = rm, werr, true
	})
	if aerr := s.c.await(func() bool { return done }); aerr != nil {
		return nil, aerr
	}
	return remove, rerr
}

// ControlOp names a process-control operation for remote watch actions.
type ControlOp = wire.ControlOp

// Control operations for OnEventAt actions.
const (
	OpStop       = wire.OpStop
	OpForeground = wire.OpForeground
	OpBackground = wire.OpBackground
	OpKill       = wire.OpKill
	OpSignal     = wire.OpSignal
)

// AttachAt returns a Session anchored at the user's LPM on a different
// host, creating it on demand. Operations issued through it originate
// there — the way chain topologies (host A knows B, B knows C) arise.
func (s *Session) AttachAt(host string) (*Session, error) {
	return s.c.Attach(s.user.Name, host)
}

// Elapsed measures the virtual time a function takes.
func (s *Session) Elapsed(fn func() error) (time.Duration, error) {
	start := s.c.Now()
	err := fn()
	return s.c.Now().Sub(start), err
}

// Locate finds the user's processes with the given name across every
// reachable host — the "locating the execution sites of a distributed
// computation" facility the paper's introduction calls for.
func (s *Session) Locate(name string) ([]GPID, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	var out []GPID
	for _, p := range snap.Procs {
		if p.Name == name {
			out = append(out, p.ID)
		}
	}
	return out, nil
}
