package ppm_test

import (
	"testing"
	"time"

	"ppm"
	"ppm/internal/journal"
)

// faultyRun drives a three-host computation under injected network
// faults: every Nth eligible transmission is lost (circuit sends sever
// the circuit, datagrams vanish silently), and a partition separates
// the home host mid-kill until a scheduled heal. Every user-visible
// operation must still succeed — the reliability layer retries,
// redials and dedups underneath.
func faultyRun(t *testing.T, seed int64) *ppm.Cluster {
	t.Helper()
	cfg := ppm.ClusterConfig{
		Seed: seed,
		Hosts: []ppm.HostSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c", Type: ppm.SunII},
		},
		JournalCapacity: 1 << 18,
	}
	cfg.LPM.RequestTimeout = 500 * time.Millisecond
	cfg.LPM.Retry = ppm.RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Second}
	c, err := ppm.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := sess.RunChild("b", "wb", root)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sess.RunChild("c", "wc", root)
	if err != nil {
		t.Fatal(err)
	}

	// Faults on: snapshots and controls now ride a lossy network.
	c.InjectLoss(7)
	if _, err := sess.Snapshot(); err != nil {
		t.Fatalf("snapshot under loss: %v", err)
	}
	if err := sess.Stop(wc); err != nil {
		t.Fatalf("stop under loss: %v", err)
	}

	// Partition the home host away and heal two virtual seconds later,
	// while the kill is mid-retry: the first attempts time out, the
	// post-heal attempt redials the sibling and lands exactly once.
	if err := c.Partition([]string{"a"}, []string{"b", "c"}); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().After(2*time.Second, c.Heal)
	if err := sess.Kill(wb); err != nil {
		t.Fatalf("kill across partition heal: %v", err)
	}

	c.InjectLoss(0)
	if err := c.Advance(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReliabilityUnderInjectedFaults: operations succeed despite
// injected loss and a partition, the retry machinery demonstrably ran,
// and the journal auditor confirms no operation executed twice.
func TestReliabilityUnderInjectedFaults(t *testing.T) {
	c := faultyRun(t, 7)
	snap := c.MetricsSnapshot()
	if snap.Counter("simnet.injected.losses") == 0 {
		t.Fatal("fault injection never fired; the scenario tests nothing")
	}
	if snap.Counter("lpm.request.retries") == 0 {
		t.Fatal("no request was ever retried")
	}
	if snap.Counter("lpm.request.redials") == 0 {
		t.Fatal("no sibling circuit was ever redialed")
	}
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Fatalf("audit violations under faults:\n%s", journal.AuditReport(vs))
	}
}

// TestRestartDoesNotReplayStaleOps: a restarted home host gets a fresh
// LPM whose operation numbering starts over. Its peers must not answer
// the new ops from reply-cache entries left by the previous
// incarnation — the op identity carries the incarnation exchanged at
// hello time, so a stale "op 1" entry can never satisfy the fresh
// LPM's op 1.
func TestRestartDoesNotReplayStaleOps(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Seed:  11,
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	// Op 1 of the first incarnation lands in b's reply cache.
	if _, err := sess.Run("b", "first"); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart("a"); err != nil {
		t.Fatal(err)
	}
	sess2, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	// The fresh LPM re-issues op 1. Without incarnation scoping b would
	// replay the cached "first" ack and never fork this process.
	if _, err := sess2.Run("b", "second"); err != nil {
		t.Fatal(err)
	}
	procs, err := c.Processes("b", "u")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, p := range procs {
		if p.Name == "second" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("post-restart create executed %d times, want 1 (stale cache replay?)", count)
	}
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Fatalf("audit violations across restart:\n%s", journal.AuditReport(vs))
	}
}

// TestMultiUserOpsAuditCleanly: two users' LPMs on one host number
// their operations independently, so both issue an "op 1" against the
// same peer. The auditor (and the peer's dedup filter) must treat them
// as distinct operations, not flag a double execution.
func TestMultiUserOpsAuditCleanly(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Seed:  13,
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u1")
	c.AddUser("u2")
	s1, err := c.Attach("u1", "a")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Attach("u2", "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run("b", "j1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run("b", "j2"); err != nil {
		t.Fatal(err)
	}
	for user, name := range map[string]string{"u1": "j1", "u2": "j2"} {
		procs, err := c.Processes("b", user)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range procs {
			found = found || p.Name == name
		}
		if !found {
			t.Fatalf("%s's create never executed on b", user)
		}
	}
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Fatalf("independent users' ops flagged as duplicates:\n%s", journal.AuditReport(vs))
	}
}

// TestFaultyJournalDeterministicReplay: injected loss and retry
// scheduling run entirely on the virtual clock and the seeded stream,
// so two same-seed faulty runs must produce byte-identical journals.
func TestFaultyJournalDeterministicReplay(t *testing.T) {
	a := faultyRun(t, 42)
	b := faultyRun(t, 42)
	if d := journal.Diff(a.Journal(), b.Journal()); d != nil {
		t.Fatalf("same seed diverged under faults:\n%s", d.Format())
	}
	if a.Journal().Render() != b.Journal().Render() {
		t.Fatal("journal renders differ although Diff found no divergence")
	}
	if a.Journal().Len() == 0 {
		t.Fatal("faulty scenario produced an empty journal")
	}
}
