package ppm_test

import (
	"testing"
	"time"

	"ppm"
	"ppm/internal/journal"
)

// faultyRun drives a three-host computation under injected network
// faults: every Nth eligible transmission is lost (circuit sends sever
// the circuit, datagrams vanish silently), and a partition separates
// the home host mid-kill until a scheduled heal. Every user-visible
// operation must still succeed — the reliability layer retries,
// redials and dedups underneath.
func faultyRun(t *testing.T, seed int64) *ppm.Cluster {
	t.Helper()
	cfg := ppm.ClusterConfig{
		Seed: seed,
		Hosts: []ppm.HostSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c", Type: ppm.SunII},
		},
		JournalCapacity: 1 << 18,
	}
	cfg.LPM.RequestTimeout = 500 * time.Millisecond
	cfg.LPM.Retry = ppm.RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Second}
	c, err := ppm.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := sess.RunChild("b", "wb", root)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sess.RunChild("c", "wc", root)
	if err != nil {
		t.Fatal(err)
	}

	// Faults on: snapshots and controls now ride a lossy network.
	c.InjectLoss(7)
	if _, err := sess.Snapshot(); err != nil {
		t.Fatalf("snapshot under loss: %v", err)
	}
	if err := sess.Stop(wc); err != nil {
		t.Fatalf("stop under loss: %v", err)
	}

	// Partition the home host away and heal two virtual seconds later,
	// while the kill is mid-retry: the first attempts time out, the
	// post-heal attempt redials the sibling and lands exactly once.
	if err := c.Partition([]string{"a"}, []string{"b", "c"}); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().After(2*time.Second, c.Heal)
	if err := sess.Kill(wb); err != nil {
		t.Fatalf("kill across partition heal: %v", err)
	}

	c.InjectLoss(0)
	if err := c.Advance(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReliabilityUnderInjectedFaults: operations succeed despite
// injected loss and a partition, the retry machinery demonstrably ran,
// and the journal auditor confirms no operation executed twice.
func TestReliabilityUnderInjectedFaults(t *testing.T) {
	c := faultyRun(t, 7)
	snap := c.MetricsSnapshot()
	if snap.Counter("simnet.injected.losses") == 0 {
		t.Fatal("fault injection never fired; the scenario tests nothing")
	}
	if snap.Counter("lpm.request.retries") == 0 {
		t.Fatal("no request was ever retried")
	}
	if snap.Counter("lpm.request.redials") == 0 {
		t.Fatal("no sibling circuit was ever redialed")
	}
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Fatalf("audit violations under faults:\n%s", journal.AuditReport(vs))
	}
}

// TestFaultyJournalDeterministicReplay: injected loss and retry
// scheduling run entirely on the virtual clock and the seeded stream,
// so two same-seed faulty runs must produce byte-identical journals.
func TestFaultyJournalDeterministicReplay(t *testing.T) {
	a := faultyRun(t, 42)
	b := faultyRun(t, 42)
	if d := journal.Diff(a.Journal(), b.Journal()); d != nil {
		t.Fatalf("same seed diverged under faults:\n%s", d.Format())
	}
	if a.Journal().Render() != b.Journal().Render() {
		t.Fatal("journal renders differ although Diff found no divergence")
	}
	if a.Journal().Len() == 0 {
		t.Fatal("faulty scenario produced an empty journal")
	}
}
