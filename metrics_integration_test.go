package ppm_test

import (
	"strings"
	"testing"
	"time"

	"ppm"
)

// metricsScenario drives a three-host computation through the paths the
// metrics layer instruments — remote creation, sibling traffic, a
// snapshot flood, a partition, and a crash with recovery — and returns
// the cluster's full metrics report.
func metricsScenario(t *testing.T, seed int64) string {
	t.Helper()
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Seed: seed,
		Hosts: []ppm.HostSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c", Type: ppm.SunII},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	c.SetRecoveryList("u", "a", "b", "c")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := sess.RunChild("b", "wb", root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunChild("c", "wc", root); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Stop(wb); err != nil {
		t.Fatal(err)
	}
	if err := c.Partition([]string{"a", "b"}, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Heal()
	if err := c.Advance(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	return c.MetricsReport()
}

// TestDeterminismMetricsSnapshot: two clusters fed the identical script
// must count the identical things — the metrics layer introduces no
// nondeterminism of its own, and every instrumented path is itself
// deterministic.
func TestDeterminismMetricsSnapshot(t *testing.T) {
	a := metricsScenario(t, 7)
	b := metricsScenario(t, 7)
	if a != b {
		t.Fatalf("same seed produced different metrics reports:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
}

// TestMetricsReportFamilies: the instrumented scenario must populate
// every layer's metric family — network, wire protocol, kernel, name
// server, and LPM.
func TestMetricsReportFamilies(t *testing.T) {
	report := metricsScenario(t, 7)
	if strings.TrimSpace(report) == "" || strings.Contains(report, "(no metrics recorded)") {
		t.Fatalf("empty metrics report:\n%s", report)
	}
	for _, family := range []string{"[simnet]", "[wire]", "[kernel]", "[daemon]", "[lpm]"} {
		if !strings.Contains(report, family) {
			t.Errorf("report missing %s family:\n%s", family, report)
		}
	}
}

// TestMetricsCrossLayerConsistency: independent layers counting the
// same traffic must agree. Wire encodes every frame the LPMs and pmd
// send over circuits and datagrams, so the wire totals can never exceed
// what simnet accepted plus what was dropped.
func TestMetricsCrossLayerConsistency(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunChild("b", "w", root); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snap := c.MetricsSnapshot()
	wireMsgs := snap.CounterSum("wire.msgs.")
	if wireMsgs == 0 {
		t.Fatal("no wire messages counted")
	}
	carried := snap.Counter("simnet.circuit.sent") + snap.Counter("simnet.datagram.sent") +
		snap.Counter("simnet.circuit.dropped") + snap.Counter("simnet.datagram.dropped")
	if wireMsgs > carried {
		t.Errorf("wire counted %d encoded messages but simnet carried only %d frames",
			wireMsgs, carried)
	}
	if got := snap.Counter("daemon.queries"); got == 0 {
		t.Error("pmd served no queries despite remote creation")
	}
	if got := snap.Counter("lpm.siblings.opened"); got == 0 {
		t.Error("no sibling circuits opened despite remote creation")
	}
}
