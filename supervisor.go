package ppm

import (
	"time"

	"ppm/internal/resilient"
	"ppm/internal/sim"
)

// Supervision re-exports the resilient-computation layer (the "robust
// protocols implemented on top of our basic mechanism" the paper's
// Section 5 anticipates).
type (
	// Supervisor restarts supervised processes per their policies.
	Supervisor = resilient.Supervisor
	// SuperviseSpec describes one supervised process.
	SuperviseSpec = resilient.Spec
	// RestartPolicy says when a process is restarted.
	RestartPolicy = resilient.Policy
)

// Restart policies.
const (
	RestartNever     = resilient.Never
	RestartOnFailure = resilient.OnFailure
	RestartAlways    = resilient.Always
)

// sessEnv adapts a Session's LPM to the supervisor environment.
type sessEnv struct{ s *Session }

func (e sessEnv) Snapshot(cb func(Snapshot, error)) { e.s.mgr.Snapshot(cb) }

func (e sessEnv) Create(host, name string, parent GPID, cb func(GPID, error)) {
	e.s.mgr.Create(host, name, parent, cb)
}

// schedClock adapts the simulation scheduler to the supervisor clock.
type schedClock struct{ sched *sim.Scheduler }

func (c schedClock) After(d time.Duration, fn func()) resilient.CancelableTimer {
	return c.sched.After(d, fn)
}

// NewSupervisor creates a supervisor over this session's PPM, polling
// the distributed snapshot at the given virtual-time interval.
func (s *Session) NewSupervisor(interval time.Duration) *Supervisor {
	return resilient.New(sessEnv{s}, schedClock{s.c.sched}, interval)
}
