package ppm_test

import (
	"strings"
	"testing"
	"time"

	"ppm"
	"ppm/internal/journal"
)

// journalScenario drives the same three-host computation the metrics
// integration test uses — remote creation, sibling traffic, a snapshot
// flood, a partition, and a crash — with a journal ring large enough to
// retain every record, and returns the cluster for inspection.
func journalScenario(t *testing.T, seed int64) *ppm.Cluster {
	t.Helper()
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Seed: seed,
		Hosts: []ppm.HostSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c", Type: ppm.SunII},
		},
		JournalCapacity: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	c.SetRecoveryList("u", "a", "b", "c")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := sess.RunChild("b", "wb", root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunChild("c", "wc", root); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Stop(wb); err != nil {
		t.Fatal(err)
	}
	if err := c.Partition([]string{"a", "b"}, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Heal()
	if err := c.Advance(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	return c
}

// firstToken returns the first space-separated token of a record's
// detail — the transport for net.send/deliver/drop, the message type
// name for wire.encode/decode, the event kind for kernel.event.
func firstToken(detail string) string {
	if i := strings.IndexByte(detail, ' '); i >= 0 {
		return detail[:i]
	}
	return detail
}

// TestJournalMetricsCrossCheck: the journal and the metrics registry
// observe the same instrumentation points, so per-kind record counts
// must equal the corresponding counters exactly. A mismatch means one
// subsystem saw traffic the other missed.
func TestJournalMetricsCrossCheck(t *testing.T) {
	c := journalScenario(t, 7)
	j := c.Journal()
	if j.Dropped() != 0 {
		t.Fatalf("journal dropped %d records; raise JournalCapacity", j.Dropped())
	}
	kindCount := make(map[journal.Kind]uint64)
	tokCount := make(map[string]uint64) // "<kind>/<first detail token>"
	for _, r := range j.Records() {
		kindCount[r.Kind]++
		tokCount[string(r.Kind)+"/"+firstToken(r.Detail)]++
	}
	snap := c.MetricsSnapshot()

	checks := []struct {
		counter string
		records uint64
	}{
		{"simnet.datagram.sent", tokCount["net.send/datagram"]},
		{"simnet.circuit.sent", tokCount["net.send/circuit"]},
		{"simnet.datagram.dropped", tokCount["net.drop/datagram"]},
		{"simnet.circuit.dropped", tokCount["net.drop/circuit"]},
		{"simnet.circuit.opened", kindCount[journal.NetCircuitOpen]},
		{"simnet.circuit.closed", kindCount[journal.NetCircuitClose]},
		{"simnet.circuit.broken", kindCount[journal.NetCircuitBreak]},
		{"simnet.host.crashes", kindCount[journal.NetHostCrash]},
		{"simnet.host.restarts", kindCount[journal.NetHostRestart]},
		{"simnet.partition.events", kindCount[journal.NetPartition]},
		{"simnet.partition.heals", kindCount[journal.NetHeal]},
		{"kernel.spawns", kindCount[journal.KernelSpawn]},
		{"kernel.forks", kindCount[journal.KernelFork]},
		{"kernel.exits", kindCount[journal.KernelExit]},
		{"daemon.queries", kindCount[journal.DaemonQuery]},
		{"daemon.auth_failures", kindCount[journal.DaemonAuthFail]},
		{"daemon.lpm.found", kindCount[journal.DaemonLPMFound]},
		{"daemon.lpm.created", kindCount[journal.DaemonLPMCreated]},
		{"lpm.adoptions", kindCount[journal.LPMAdopt]},
		{"lpm.siblings.opened", kindCount[journal.LPMSiblingOpen]},
		{"lpm.siblings.closed", kindCount[journal.LPMSiblingClose]},
		{"lpm.siblings.rejected", kindCount[journal.LPMSiblingReject]},
		{"lpm.flood.originated", kindCount[journal.LPMFloodOrigin]},
		{"lpm.flood.dedup_hits", kindCount[journal.LPMFloodDup]},
		{"lpm.relay.originated", kindCount[journal.LPMRelayOrigin]},
		{"lpm.relay.forwarded", kindCount[journal.LPMRelayForward]},
	}
	for _, ck := range checks {
		if got := snap.Counter(ck.counter); got != ck.records {
			t.Errorf("%s = %d but journal recorded %d", ck.counter, got, ck.records)
		}
	}

	// The flood body runs once at the origin and once per forwarding
	// host, so applies must equal originations plus forwards.
	applies := kindCount[journal.LPMFloodApply]
	want := snap.Counter("lpm.flood.originated") + snap.Counter("lpm.flood.forwarded")
	if applies != want {
		t.Errorf("lpm.flood.apply records = %d, want originated+forwarded = %d", applies, want)
	}

	// Every encoded wire message is both counted and journaled, broken
	// down by message type: wire.msgs.<Name> must equal the number of
	// wire.encode records whose detail leads with <Name>, for every
	// message type either side saw.
	wireFam, ok := snap.Family("wire")
	if !ok {
		t.Fatal("no wire metrics family")
	}
	seen := make(map[string]bool)
	for _, cp := range wireFam.Counters {
		name, found := strings.CutPrefix(cp.Name, "wire.msgs.")
		if !found {
			continue
		}
		seen[name] = true
		if got := tokCount["wire.encode/"+name]; got != cp.Value {
			t.Errorf("wire.msgs.%s = %d but journal recorded %d encodes", name, cp.Value, got)
		}
	}
	for key, n := range tokCount {
		name, found := strings.CutPrefix(key, "wire.encode/")
		if !found {
			continue
		}
		if !seen[name] {
			t.Errorf("journal recorded %d encodes of %s but no wire.msgs.%s counter exists", n, name, name)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no wire.msgs counters recorded")
	}

	// Sanity: the scenario exercised every instrumented layer.
	for _, k := range []journal.Kind{
		journal.NetSend, journal.WireEncode, journal.WireDecode,
		journal.KernelSpawn, journal.DaemonQuery, journal.LPMAdopt,
		journal.LPMSiblingAuth, journal.LPMFloodOrigin, journal.SnapshotTaken,
	} {
		if kindCount[k] == 0 {
			t.Errorf("scenario produced no %s records", k)
		}
	}
}

// TestJournalAuditOnScenario: the flight recorder's invariant auditor
// must pass over the full chaos scenario — partition, heal, crash and
// all.
func TestJournalAuditOnScenario(t *testing.T) {
	c := journalScenario(t, 7)
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Fatalf("audit violations:\n%s", journal.AuditReport(vs))
	}
}

// TestJournalDisabled: NoJournal must leave every journal surface inert
// but safe.
func TestJournalDisabled(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts:     []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
		NoJournal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunChild("b", "w", root); err != nil {
		t.Fatal(err)
	}
	if c.Journal() != nil {
		t.Fatal("NoJournal cluster still has a journal")
	}
	if got := c.JournalReport(ppm.JournalFilter{}); !strings.Contains(got, "disabled") {
		t.Fatalf("JournalReport = %q", got)
	}
	if vs := c.JournalAudit(); vs != nil {
		t.Fatalf("JournalAudit on disabled journal = %v", vs)
	}
}

// TestJournalTraceCrossLink: records appended inside traced operations
// must carry the operation's trace ID, tying each journal line to its
// span in the causal trace tree.
func TestJournalTraceCrossLink(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sess.RunChild("b", "w", root)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Trace(func() error { return sess.Stop(w) })
	if err != nil {
		t.Fatal(err)
	}
	var linked int
	for _, r := range c.Journal().Records() {
		if r.Trace == id {
			linked++
		}
	}
	if linked == 0 {
		t.Fatal("no journal records carry the traced operation's trace ID")
	}
}
