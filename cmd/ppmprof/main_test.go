package main

import (
	"bytes"
	"strings"
	"testing"

	"ppm/internal/profile"
)

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.hosts != 8 || o.op != "" || o.host != "" || o.top != 0 || o.folded || o.critical {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestParseArgsAccepts(t *testing.T) {
	o, err := parseArgs([]string{"-hosts", "4", "-op", "snapshot",
		"-host", "h03", "-top", "2", "-critical"})
	if err != nil {
		t.Fatal(err)
	}
	if o.hosts != 4 || o.op != "snapshot" || o.host != "h03" || o.top != 2 || !o.critical {
		t.Fatalf("parsed %+v", o)
	}
}

func TestParseArgsRejections(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"positional", []string{"snapshot"}, "unexpected argument"},
		{"hosts too low", []string{"-hosts", "1"}, "-hosts must be between"},
		{"hosts too high", []string{"-hosts", "25"}, "-hosts must be between"},
		{"negative top", []string{"-top", "-1"}, "-top must be >= 0"},
		{"folded and critical", []string{"-folded", "-critical"}, "mutually exclusive"},
		{"top with folded", []string{"-folded", "-top", "3"}, "meaningless with -folded"},
		{"unknown host", []string{"-host", "h99"}, "not in the scenario"},
		{"host outside count", []string{"-hosts", "3", "-host", "h04"}, "not in the scenario"},
		{"unknown flag", []string{"-frobnicate"}, "not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseArgs(c.args)
			if err == nil {
				t.Fatalf("args %v accepted, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("args %v: error %q, want containing %q", c.args, err, c.want)
			}
		})
	}
}

// runOnce renders one full ppmprof run into a buffer.
func runOnce(t *testing.T, o options) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatalf("run(%+v): %v", o, err)
	}
	return buf.String()
}

// TestRunDeterministic is the profiler-determinism golden: two runs of
// the same scenario must render byte-identical output in every mode.
func TestRunDeterministic(t *testing.T) {
	modes := []struct {
		name string
		o    options
	}{
		{"table", options{hosts: 4}},
		{"folded", options{hosts: 4, folded: true}},
		{"critical", options{hosts: 4, critical: true}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			a, b := runOnce(t, m.o), runOnce(t, m.o)
			if a != b {
				t.Errorf("two runs differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
			}
		})
	}
}

// TestRunTableContent sanity-checks what the default report must carry:
// the op rows the scenario generates, a clean audit, and the timeline
// block.
func TestRunTableContent(t *testing.T) {
	out := runOnce(t, options{hosts: 3})
	for _, want := range []string{
		"=== ppmprof:", "op.create", "op.control", "op.snapshot", "op.status",
		"per-host timelines:", "journal/trace audit: clean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

// TestRunConservation holds every request of the real scenario to the
// acceptance bar: phases sum exactly to the end-to-end time, and the
// unattributed share stays under 5%% of the workload total.
func TestRunConservation(t *testing.T) {
	prof, _, err := record(options{hosts: 8})
	if err != nil {
		t.Fatal(err)
	}
	var total, unattr int64
	for _, r := range prof.Requests {
		if !r.Conserved() {
			t.Errorf("trace %d (%s): phases %v do not sum to total %v",
				r.Trace, r.Op, r.Phases, r.Total())
		}
		total += int64(r.Total())
		unattr += int64(r.Phases[profile.PhaseUnattributed])
	}
	if total == 0 {
		t.Fatal("scenario produced no requests")
	}
	if pct := 100 * float64(unattr) / float64(total); pct > 5 {
		t.Errorf("unattributed share %.2f%% exceeds the 5%% budget", pct)
	}
}

func TestRunFilters(t *testing.T) {
	out := runOnce(t, options{hosts: 3, op: "snapshot"})
	if strings.Contains(out, "op.control") {
		t.Errorf("-op snapshot leaked op.control rows:\n%s", out)
	}
	out = runOnce(t, options{hosts: 3, critical: true, top: 1})
	if got := strings.Count(out, "critical path of slowest"); got != 1 {
		t.Errorf("-critical -top 1 rendered %d paths, want 1:\n%s", got, out)
	}
}
