// Command ppmprof demonstrates the PPM's virtual-time profiler: it
// runs a deterministic multi-host scenario — process creation across
// the installation, warm control round trips, snapshot and broadcast
// floods, a cluster-wide status sweep — with causal tracing enabled,
// then feeds the recorded spans and journal records to
// internal/profile and prints the analysis. This is the "where did the
// time go" data-reduction tool of the paper's Section 7, built on the
// span vocabulary of PR 2 and the flight recorder of PR 4.
//
// The default report is the aggregated per-op-type phase attribution
// table (network, reply, dispatch, backoff, kernel, unattributed —
// summing exactly to each op's end-to-end virtual time) followed by
// per-host busy/queue-depth timelines. -critical prints instead the
// critical path of the slowest request of each op type, with per-hop
// slack; -folded prints the flamegraph-compatible folded-stacks
// export. -op and -host narrow the analysis; -top N bounds the table.
// Same flags, byte-identical output on every run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ppm"
	"ppm/internal/journal"
	"ppm/internal/profile"
)

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: ppmprof [-hosts N] [-op NAME] [-host H] [-top N] [-folded | -critical]\n")
}

// options is the validated command line.
type options struct {
	hosts    int
	op       string
	host     string
	top      int
	folded   bool
	critical bool
}

// parseArgs parses and strictly validates the command line: positional
// arguments are rejected, -folded and -critical are mutually exclusive
// output modes, -top must be positive and is meaningless for -folded,
// and -host must name a host the scenario actually builds.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("ppmprof", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.IntVar(&o.hosts, "hosts", 8, "number of hosts in the scenario (2..24)")
	fs.StringVar(&o.op, "op", "",
		"only profile requests of this op type (e.g. snapshot, or op.snapshot)")
	fs.StringVar(&o.host, "host", "",
		"only profile requests originating on this host (e.g. h01)")
	fs.IntVar(&o.top, "top", 0,
		"show only the N most expensive op types (0 = all)")
	fs.BoolVar(&o.folded, "folded", false,
		"print the flamegraph-compatible folded-stacks export instead of the table")
	fs.BoolVar(&o.critical, "critical", false,
		"print the critical path of the slowest request per op type instead of the table")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if o.hosts < 2 || o.hosts > 24 {
		return o, fmt.Errorf("-hosts must be between 2 and 24, got %d", o.hosts)
	}
	if o.top < 0 {
		return o, fmt.Errorf("-top must be >= 0, got %d", o.top)
	}
	if o.folded && o.critical {
		return o, errors.New("-folded and -critical are mutually exclusive")
	}
	if o.folded && o.top != 0 {
		return o, errors.New("-top is meaningless with -folded (stacks are not ranked)")
	}
	if o.host != "" {
		found := false
		for i := 1; i <= o.hosts; i++ {
			if o.host == hostName(i) {
				found = true
			}
		}
		if !found {
			return o, fmt.Errorf("-host %q is not in the scenario (h01..h%02d)", o.host, o.hosts)
		}
	}
	return o, nil
}

func hostName(i int) string { return fmt.Sprintf("h%02d", i) }

func main() {
	o, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			usage(os.Stdout)
			return
		}
		fmt.Fprintln(os.Stderr, "ppmprof:", err)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppmprof:", err)
		os.Exit(1)
	}
}

// run builds the scenario, records it under tracing, and prints the
// requested analysis.
func run(o options, w io.Writer) error {
	prof, cluster, err := record(o)
	if err != nil {
		return err
	}
	opts := profile.Options{Op: o.op, Host: o.host, Top: o.top}
	switch {
	case o.folded:
		fmt.Fprint(w, prof.FoldedStacks(opts))
	case o.critical:
		fmt.Fprint(w, prof.CriticalReport(opts))
	default:
		fmt.Fprint(w, prof.Report(opts))
		// The profiler's inputs are only as good as the run's
		// bookkeeping: hold the journal and span table to the audit
		// invariants (every span closed exactly once, children nested,
		// cross-links resolving) before anyone trusts the numbers.
		if vs := cluster.JournalAudit(); len(vs) > 0 {
			fmt.Fprintf(w, "\njournal/trace audit: %d violations\n", len(vs))
			fmt.Fprint(w, journal.AuditReport(vs))
			return errors.New("audit failed")
		}
		fmt.Fprintf(w, "\njournal/trace audit: clean\n")
	}
	return nil
}

// record runs the scripted scenario under tracing and returns its
// profile. The scenario is fixed — same flags, same virtual history —
// so every analysis of it is byte-identical.
func record(o options) (*profile.Profile, *ppm.Cluster, error) {
	specs := make([]ppm.HostSpec, o.hosts)
	for i := range specs {
		specs[i] = ppm.HostSpec{Name: hostName(i + 1)}
	}
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{Hosts: specs})
	if err != nil {
		return nil, nil, err
	}
	cluster.AddUser("user")
	sess, err := cluster.Attach("user", "h01")
	if err != nil {
		return nil, nil, err
	}
	// Record everything: every tool op from here on roots its own
	// trace. The 24-host flood modes record a few thousand spans, so
	// widen the buffer — attribution needs the complete table.
	cluster.Tracer().SetMaxSpans(1 << 17)
	cluster.Tracer().Enable()

	// Phase 1: build the computation — one coordinator, one worker per
	// remote host. Each remote create pays the cold path: pmd query,
	// circuit establishment, fork/exec/adopt on the far kernel.
	root, err := sess.Run("h01", "coordinator")
	if err != nil {
		return nil, nil, err
	}
	workers := make([]ppm.GPID, 0, o.hosts-1)
	for i := 2; i <= o.hosts; i++ {
		wkr, err := sess.RunChild(hostName(i), "worker", root)
		if err != nil {
			return nil, nil, err
		}
		workers = append(workers, wkr)
	}
	if err := cluster.Advance(time.Second); err != nil {
		return nil, nil, err
	}

	// Phase 2: warm control round trips over the established circuits.
	for round := 0; round < 2; round++ {
		for _, wkr := range workers {
			if err := sess.Stop(wkr); err != nil {
				return nil, nil, err
			}
		}
		if _, err := sess.ContinueAll(); err != nil {
			return nil, nil, err
		}
		if err := cluster.Advance(500 * time.Millisecond); err != nil {
			return nil, nil, err
		}
	}

	// Phase 3: the multi-hop fan-outs the critical-path extractor is
	// for — a snapshot flood and a cluster-wide status sweep.
	if _, err := sess.Snapshot(); err != nil {
		return nil, nil, err
	}
	if _, err := sess.Status(); err != nil {
		return nil, nil, err
	}
	if err := cluster.Advance(time.Second); err != nil {
		return nil, nil, err
	}
	cluster.Tracer().Disable()
	return cluster.Profile(), cluster, nil
}
