// Command ppmrun executes a computation described in the PPM
// configuration language on a simulated installation, optionally under
// restart supervision, then prints the genealogy snapshot and the
// watch/supervision logs.
//
// Usage:
//
//	ppmrun [-f plan.ppm] [-hosts vax1,vax2,sun1] [-supervise] [-run 30s] [-chaos]
//
// Without -f a built-in demonstration plan is used. With -chaos, a
// random worker host is crashed mid-run to exercise supervision.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ppm"
)

const demoPlan = `
computation demo
proc coord  on vax1 trace all
proc stage1 on vax2 parent coord
proc stage2 on sun1 parent coord
watch exit of coord do note coordinator finished
`

func main() {
	file := flag.String("f", "", "plan file (default: built-in demo)")
	hosts := flag.String("hosts", "vax1,vax2,sun1", "comma-separated host names")
	supervise := flag.Bool("supervise", false, "restart exited processes")
	runFor := flag.Duration("run", 30*time.Second, "virtual time to run after launch")
	chaos := flag.Bool("chaos", false, "crash a worker host mid-run")
	flag.Parse()
	if err := run(*file, *hosts, *supervise, *runFor, *chaos); err != nil {
		fmt.Fprintln(os.Stderr, "ppmrun:", err)
		os.Exit(1)
	}
}

func run(file, hostList string, supervise bool, runFor time.Duration, chaos bool) error {
	text := demoPlan
	if file != "" {
		b, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		text = string(b)
	}
	plan, err := ppm.ParsePlan(text)
	if err != nil {
		return err
	}

	var specs []ppm.HostSpec
	names := strings.Split(hostList, ",")
	for _, h := range names {
		specs = append(specs, ppm.HostSpec{Name: strings.TrimSpace(h)})
	}
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{Hosts: specs})
	if err != nil {
		return err
	}
	cluster.AddUser("user")
	if len(plan.Recovery) > 0 {
		cluster.SetRecoveryList("user", plan.Recovery...)
	}
	sess, err := cluster.Attach("user", names[0])
	if err != nil {
		return err
	}

	comp, err := sess.LaunchPlan(plan)
	if err != nil {
		return err
	}
	defer comp.Close()
	fmt.Printf("launched %d processes:\n", len(comp.Names()))
	for _, n := range comp.Names() {
		id, _ := comp.Lookup(n)
		fmt.Printf("  %-10s %s\n", n, id)
	}

	var sup *ppm.Supervisor
	if supervise {
		sup = sess.NewSupervisor(5 * time.Second)
		for _, d := range plan.Procs {
			id, _ := comp.Lookup(d.Name)
			var parent ppm.GPID
			if d.Parent != "" {
				parent, _ = comp.Lookup(d.Parent)
			}
			sup.Supervise(ppm.SuperviseSpec{
				Name:   d.Name,
				Hosts:  names,
				Parent: parent,
				Policy: ppm.RestartAlways,
			}, id)
		}
		sup.Start()
		defer sup.Stop()
	}

	if chaos && len(names) > 1 {
		victim := names[1]
		if err := cluster.Advance(runFor / 2); err != nil {
			return err
		}
		fmt.Printf("\n*** chaos: crashing %s ***\n", victim)
		if err := cluster.Crash(victim); err != nil {
			return err
		}
		if err := cluster.Advance(runFor / 2); err != nil {
			return err
		}
	} else if err := cluster.Advance(runFor); err != nil {
		return err
	}

	snap, err := sess.Snapshot()
	if err != nil {
		return err
	}
	fmt.Println("\nfinal genealogy:")
	fmt.Println(snap.Render())
	if notes := comp.Notes(); len(notes) > 0 {
		fmt.Println("watch notes:")
		for _, n := range notes {
			fmt.Println("  " + n)
		}
	}
	if sup != nil {
		fmt.Printf("\nsupervision: %d restart(s)\n", sup.Restarts)
		for _, e := range sup.Events {
			fmt.Println("  " + e)
		}
	}
	return nil
}
