package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunDemoPlan(t *testing.T) {
	if err := run("", "vax1,vax2,sun1", false, 10*time.Second, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSupervisionAndChaos(t *testing.T) {
	if err := run("", "vax1,vax2,sun1", true, 30*time.Second, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlanFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.ppm")
	plan := `
computation filetest
recovery alpha
proc a on alpha
proc b on beta parent a
`
	if err := os.WriteFile(path, []byte(plan), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "alpha,beta", false, 5*time.Second, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadPlanFile(t *testing.T) {
	if err := run("/nonexistent/plan.ppm", "a,b", false, time.Second, false); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ppm")
	if err := os.WriteFile(path, []byte("garbage directive"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "a,b", false, time.Second, false); err == nil {
		t.Fatal("bad plan accepted")
	}
}

func TestRunPlanHostNotInCluster(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.ppm")
	if err := os.WriteFile(path, []byte("proc a on ghost"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "alpha,beta", false, time.Second, false); err == nil {
		t.Fatal("plan referencing an unknown host should fail")
	}
}
