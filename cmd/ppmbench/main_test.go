package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppm/internal/perf"
)

// shortBenchtime caps every testing.Benchmark in this test binary at a
// handful of iterations: these tests exercise the emit/parse/compare
// plumbing, not the measurements.
func shortBenchtime(t *testing.T) {
	t.Helper()
	if err := flag.Set("test.benchtime", "5x"); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteNamesUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, sb := range suite {
		if sb.name == "" || sb.desc == "" || sb.fn == nil {
			t.Fatalf("incomplete suite entry %+v", sb)
		}
		if !strings.Contains(sb.name, "/") {
			t.Errorf("%s: suite names are layer/operation", sb.name)
		}
		if seen[sb.name] {
			t.Errorf("duplicate suite name %s", sb.name)
		}
		seen[sb.name] = true
	}
}

// TestPerformanceMDCatalogsEverySuiteEntry enforces the PERFORMANCE.md
// contract: every benchmark ppmbench emits is documented there.
func TestPerformanceMDCatalogsEverySuiteEntry(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "PERFORMANCE.md"))
	if err != nil {
		t.Fatalf("PERFORMANCE.md must exist and catalog the suite: %v", err)
	}
	doc := string(data)
	for _, sb := range suite {
		if !strings.Contains(doc, "`"+sb.name+"`") {
			t.Errorf("PERFORMANCE.md does not document benchmark `%s`", sb.name)
		}
	}
}

// TestEmitParseCompareRoundTrip runs the cheap wire benchmarks through
// the real harness path: measure, encode, parse back, compare against
// itself (zero regressions, strict mode).
func TestEmitParseCompareRoundTrip(t *testing.T) {
	shortBenchtime(t)
	report, err := runSuite("^wire/", os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("wire suite = %d benchmarks, want 3", len(report.Benchmarks))
	}
	data, err := report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := perf.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	cmp := perf.Compare(parsed, report, 25)
	if got := cmp.Regressions(); got != 0 {
		t.Fatalf("self-compare found %d regressions:\n%s", got, cmp.Format())
	}
}

// TestWireHotPathZeroAllocsViaHarness pins the harness-visible form of
// the allocation contract: the wire benchmarks report 0 allocs/op.
func TestWireHotPathZeroAllocsViaHarness(t *testing.T) {
	shortBenchtime(t)
	report, err := runSuite("^wire/(encode|decode)$", os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range report.Benchmarks {
		if b.AllocsPerOp != 0 {
			t.Errorf("%s: %d allocs/op, want 0", b.Name, b.AllocsPerOp)
		}
	}
}

func TestRunSuiteRejectsEmptyFilter(t *testing.T) {
	if _, err := runSuite("^no-such-benchmark$", os.Stdout); err == nil {
		t.Fatal("runSuite accepted a filter matching nothing")
	}
	if _, err := runSuite("([", os.Stdout); err == nil {
		t.Fatal("runSuite accepted a malformed regexp")
	}
}

// TestCompareCLI drives the run() entry point end to end in a temp
// dir: emit a baseline, compare clean against it, then corrupt it and
// check the parse-error exit code.
func TestCompareCLI(t *testing.T) {
	shortBenchtime(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_1.json")

	if code := run([]string{"-run", "^wire/encode$", "-benchtime", "5x", "-o", base}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("emit exited %d", code)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := perf.Parse(data)
	if err != nil {
		t.Fatalf("emitted report does not parse: %v", err)
	}
	if rep.Seq != 1 {
		t.Fatalf("first report Seq = %d, want 1", rep.Seq)
	}

	if code := run([]string{"-run", "^wire/encode$", "-benchtime", "5x", "-compare", base, "-threshold", "10000"}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("clean compare exited %d", code)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"ppmbench/v999"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-compare", bad, "-informational"}, os.Stdout, os.Stderr); code != 2 {
		t.Fatalf("mis-versioned baseline exited %d, want 2 (even in informational mode)", code)
	}
}

func TestNextSeqInDir(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"BENCH_1.json", "BENCH_3.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := nextSeqInDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("seq = %d, want 4", seq)
	}
}
