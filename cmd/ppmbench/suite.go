package main

import (
	"testing"
	"time"

	"ppm"
	"ppm/internal/detect"
	"ppm/internal/journal"
	"ppm/internal/profile"
	"ppm/internal/sim"
	"ppm/internal/simnet"
	"ppm/internal/wire"
)

// A suiteBench is one curated micro-benchmark. The name is the stable
// identifier recorded in BENCH_<n>.json; renaming one is a breaking
// change for --compare (the old name reads as MISSING), so names
// change only together with a note in PERFORMANCE.md.
type suiteBench struct {
	name string // stable identifier ("layer/operation")
	desc string // one line, shown by -list and cataloged in PERFORMANCE.md
	fn   func(b *testing.B)
}

// suite is the curated benchmark set, in layer order: the framing hot
// path, the scheduler core, the network delivery path, and the
// end-to-end PPM scenarios that tie them together.
var suite = []suiteBench{
	{"wire/encode", "frame an op-less envelope through a reused encoder", benchWireEncode},
	{"wire/decode", "borrow-decode an op-less frame", benchWireDecode},
	{"wire/roundtrip", "encode then borrow-decode a frame with both trailers", benchWireRoundTrip},
	{"sim/step", "schedule and fire one scheduler event in the steady state", benchSimStep},
	{"detect/observe", "one failure-detector arrival observation plus a suspicion read", benchDetectObserve},
	{"simnet/datagram", "one-hop datagram delivery, including the scheduler drain", benchSimnetDatagram},
	{"lpm/dispatch", "remote stop+continue round trip over a warm sibling circuit", benchLPMDispatch},
	{"journal/append", "append one record to a saturated flight-recorder ring", benchJournalAppend},
	{"snapshot/fanout", "distributed snapshot across a warm 8-host installation", benchSnapshotFanout},
	{"status/gather", "cluster-wide status sweep across a warm 8-host installation", benchStatusGather},
	{"profile/build", "attribute a traced 8-host workload's span table (post-hoc analysis)", benchProfileBuild},
}

// --- wire ---

func opLessEnvelope() wire.Envelope {
	return wire.Envelope{
		Type:  wire.MsgControl,
		ReqID: 42,
		Body:  []byte("u\x00\x04host\x00\x00\x00\x07\x01\x00\x00\x00\x00"),
	}
}

func benchWireEncode(b *testing.B) {
	b.ReportAllocs()
	ev := opLessEnvelope()
	enc := wire.NewEncoder(ev.EncodedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		ev.EncodeTo(enc)
	}
}

func benchWireDecode(b *testing.B) {
	b.ReportAllocs()
	frame := opLessEnvelope().Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeEnvelopeBorrow(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireRoundTrip(b *testing.B) {
	b.ReportAllocs()
	ev := opLessEnvelope()
	ev.OpID = 7
	ev.SetTrace(3, 4)
	enc := wire.NewEncoder(ev.EncodedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		frame := ev.EncodeTo(enc)
		if _, err := wire.DecodeEnvelopeBorrow(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sim ---

func benchSimStep(b *testing.B) {
	b.ReportAllocs()
	s := sim.NewScheduler(1)
	fn := func() {}
	s.After(time.Microsecond, fn) // warm the event free list
	s.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		s.Step()
	}
}

// --- detect ---

// benchDetectObserve measures the accrual detector's per-message cost:
// every circuit arrival pays one Observe (Jacobson/Karels integer
// filter step) and every linktest tick pays one Suspicion read, so
// this pair is the detector's entire steady-state hot path. The
// zero-alloc property is pinned by TestDetectorStepZeroAllocs in
// internal/detect.
func benchDetectObserve(b *testing.B) {
	b.ReportAllocs()
	now := time.Duration(0)
	d := detect.New(detect.Config{}, now)
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 125 * time.Millisecond
		d.Observe(now)
		sink += d.Suspicion(now + 50*time.Millisecond)
	}
	b.StopTimer()
	if sink < 0 {
		b.Fatal("suspicion went negative")
	}
}

// --- simnet ---

func benchSimnetDatagram(b *testing.B) {
	b.ReportAllocs()
	s := sim.NewScheduler(1)
	n := simnet.New(s, simnet.Options{})
	for _, h := range []string{"a", "b"} {
		if err := n.AddHost(h); err != nil {
			b.Fatal(err)
		}
	}
	if err := n.AddSegment("net", "a", "b"); err != nil {
		b.Fatal(err)
	}
	delivered := 0
	if err := n.HandleDatagram("b", 100, func(simnet.Addr, []byte) { delivered++ }); err != nil {
		b.Fatal(err)
	}
	payload := []byte("u\x00\x04host\x00\x00\x00\x07\x01")
	from, to := simnet.Addr{Host: "a", Port: 5}, simnet.Addr{Host: "b", Port: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.SendDatagram(from, to, payload)
		if err := s.RunUntilIdle(16); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d datagrams", delivered, b.N)
	}
	b.ReportMetric(1, "msgs/op")
}

// --- end-to-end PPM scenarios ---

// wireMsgs totals the encoded wire messages the cluster has produced.
func wireMsgs(c *ppm.Cluster) uint64 {
	return c.MetricsSnapshot().CounterSum("wire.msgs.")
}

func benchLPMDispatch(b *testing.B) {
	b.ReportAllocs()
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		b.Fatal(err)
	}
	id, err := sess.Run("b", "job") // warms the a<->b sibling circuit
	if err != nil {
		b.Fatal(err)
	}
	before := wireMsgs(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Stop(id); err != nil {
			b.Fatal(err)
		}
		if err := sess.Foreground(id); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(wireMsgs(c)-before)/float64(b.N), "msgs/op")
}

func benchJournalAppend(b *testing.B) {
	b.ReportAllocs()
	var t time.Duration
	j := journal.New(func() time.Duration { t += time.Microsecond; return t })
	j.SetCapacity(1024)
	for i := 0; i < 1024; i++ { // saturate the ring: appends now evict
		j.Append(journal.NetSend, "host", "datagram a:1->b:2 14B")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Append(journal.NetSend, "host", "datagram a:1->b:2 14B")
	}
}

func benchSnapshotFanout(b *testing.B) {
	b.ReportAllocs()
	hosts := make([]ppm.HostSpec, 8)
	names := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	for i, n := range names {
		hosts[i] = ppm.HostSpec{Name: n}
	}
	c, err := ppm.NewCluster(ppm.ClusterConfig{Hosts: hosts})
	if err != nil {
		b.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "h0")
	if err != nil {
		b.Fatal(err)
	}
	root, err := sess.Run("h0", "root")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range names[1:] {
		if _, err := sess.RunChild(n, "w", root); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := sess.Snapshot(); err != nil { // warm every circuit
		b.Fatal(err)
	}
	before := wireMsgs(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(wireMsgs(c)-before)/float64(b.N), "msgs/op")
}

func benchStatusGather(b *testing.B) {
	b.ReportAllocs()
	hosts := make([]ppm.HostSpec, 8)
	names := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	for i, n := range names {
		hosts[i] = ppm.HostSpec{Name: n}
	}
	c, err := ppm.NewCluster(ppm.ClusterConfig{Hosts: hosts})
	if err != nil {
		b.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "h0")
	if err != nil {
		b.Fatal(err)
	}
	root, err := sess.Run("h0", "root")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range names[1:] {
		if _, err := sess.RunChild(n, "w", root); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := sess.Status(); err != nil { // warm every circuit and report buffer
		b.Fatal(err)
	}
	before := wireMsgs(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := sess.Status()
		if err != nil {
			b.Fatal(err)
		}
		if len(sw.Reports) != 8 || len(sw.Unreachable) != 0 {
			b.Fatalf("sweep covered %d/8 hosts, unreachable %v", len(sw.Reports), sw.Unreachable)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(wireMsgs(c)-before)/float64(b.N), "msgs/op")
}

// --- profile ---

// benchProfileBuild measures the analyzer itself, not the run: an
// 8-host workload (creates, control round trips, a snapshot flood, a
// status sweep) is traced once during setup, then each iteration
// re-attributes the recorded span table and journal from scratch. The
// per-span cost of Build is additionally pinned by an AllocsPerRun
// test in internal/profile.
func benchProfileBuild(b *testing.B) {
	b.ReportAllocs()
	hosts := make([]ppm.HostSpec, 8)
	names := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	for i, n := range names {
		hosts[i] = ppm.HostSpec{Name: n}
	}
	c, err := ppm.NewCluster(ppm.ClusterConfig{Hosts: hosts})
	if err != nil {
		b.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "h0")
	if err != nil {
		b.Fatal(err)
	}
	c.Tracer().SetMaxSpans(1 << 16)
	c.Tracer().Enable()
	root, err := sess.Run("h0", "root")
	if err != nil {
		b.Fatal(err)
	}
	workers := make([]ppm.GPID, 0, len(names)-1)
	for _, n := range names[1:] {
		w, err := sess.RunChild(n, "w", root)
		if err != nil {
			b.Fatal(err)
		}
		workers = append(workers, w)
	}
	for _, w := range workers {
		if err := sess.Stop(w); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := sess.ContinueAll(); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Snapshot(); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Status(); err != nil {
		b.Fatal(err)
	}
	c.Tracer().Disable()
	spans := c.Tracer().Spans()
	records := c.Journal().Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profile.Build(spans, records)
		if len(p.Requests) == 0 {
			b.Fatal("profiled zero requests")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(spans)), "spans")
}
