// Command ppmbench runs the repository's curated micro-benchmark
// suite — the framing hot path, the scheduler core, network delivery
// and the end-to-end PPM scenarios — and emits a schema-versioned
// BENCH_<n>.json report (ns/op, B/op, allocs/op, plus msgs/sec of
// virtual traffic per wall-clock second for the traffic-generating
// scenarios). See PERFORMANCE.md for the benchmark catalog and the
// regression workflow.
//
// Usage:
//
//	ppmbench [-benchtime 1s] [-run regexp] [-o FILE] [-note text]
//	ppmbench -list
//	ppmbench --compare BENCH_1.json [-threshold 25] [-informational]
//
// Without -o, the report lands in BENCH_<n>.json in the current
// directory, where n is one past the highest existing report. With
// --compare, the suite runs and the fresh results are diffed against
// the baseline report: allocs/op growth and benchmarks missing from
// the new run always count as regressions, ns/op drift only beyond
// -threshold percent. Regressions exit 1 (suppressed by
// -informational, which reserves nonzero exits for unreadable or
// mis-versioned baselines — the CI mode).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"ppm/internal/perf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ppmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchtime     = fs.String("benchtime", "", "per-benchmark budget, as accepted by go test (e.g. 1s, 100x)")
		runFilter     = fs.String("run", "", "only run benchmarks matching this regexp")
		outPath       = fs.String("o", "", "report path (default BENCH_<n>.json in the current directory)")
		note          = fs.String("note", "", "free-form note recorded in the report")
		commit        = fs.String("commit", "", "git revision recorded in the report")
		list          = fs.Bool("list", false, "list the suite and exit")
		comparePath   = fs.String("compare", "", "baseline BENCH_<n>.json to diff against (report is not written)")
		threshold     = fs.Float64("threshold", 25, "ns/op drift percentage tolerated by --compare")
		informational = fs.Bool("informational", false, "with --compare: report regressions but exit 0 (CI mode)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, sb := range suite {
			fmt.Fprintf(stdout, "%-18s %s\n", sb.name, sb.desc)
		}
		return 0
	}

	// Parse the baseline before spending minutes measuring: a corrupt
	// or mis-versioned file should fail immediately.
	var baseline *perf.Report
	if *comparePath != "" {
		data, err := os.ReadFile(*comparePath)
		if err != nil {
			fmt.Fprintln(stderr, "ppmbench:", err)
			return 2
		}
		baseline, err = perf.Parse(data)
		if err != nil {
			fmt.Fprintln(stderr, "ppmbench:", err)
			return 2
		}
	}

	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(stderr, "ppmbench: bad -benchtime:", err)
			return 2
		}
	}

	report, err := runSuite(*runFilter, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "ppmbench:", err)
		return 2
	}
	report.Note = *note
	report.Commit = *commit

	if baseline != nil {
		cmp := perf.Compare(baseline, report, *threshold)
		fmt.Fprint(stdout, cmp.Format())
		if cmp.Regressions() > 0 && !*informational {
			return 1
		}
		return 0
	}

	path := *outPath
	dir := "."
	if path != "" {
		dir = filepath.Dir(path)
	}
	seq, perr := nextSeqInDir(dir)
	if perr != nil {
		fmt.Fprintln(stderr, "ppmbench:", perr)
		return 2
	}
	report.Seq = seq
	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", seq)
	}
	data, err := report.Encode()
	if err != nil {
		fmt.Fprintln(stderr, "ppmbench:", err)
		return 2
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(stderr, "ppmbench:", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", path, len(report.Benchmarks))
	return 0
}

// runSuite measures every suite benchmark matching filter and collects
// the results into a report. msgs/sec — virtual messages generated per
// wall-clock second of simulation — is derived for every benchmark
// that reports a msgs/op metric.
func runSuite(filter string, stdout *os.File) (*perf.Report, error) {
	var re *regexp.Regexp
	if filter != "" {
		var err error
		re, err = regexp.Compile(filter)
		if err != nil {
			return nil, fmt.Errorf("bad -run regexp: %w", err)
		}
	}
	report := &perf.Report{SchemaVersion: perf.Schema}
	for _, sb := range suite {
		if re != nil && !re.MatchString(sb.name) {
			continue
		}
		r := testing.Benchmark(sb.fn)
		res := perf.Result{
			Name:        sb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = make(map[string]float64, len(r.Extra)+1)
			for k, v := range r.Extra {
				res.Extra[k] = v
			}
			if msgs, ok := r.Extra["msgs/op"]; ok && res.NsPerOp > 0 {
				res.Extra["msgs/sec"] = msgs / res.NsPerOp * 1e9
			}
		}
		fmt.Fprintf(stdout, "%-18s %12d iters %14.1f ns/op %8d B/op %6d allocs/op\n",
			sb.name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		report.Benchmarks = append(report.Benchmarks, res)
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmarks match -run %q", filter)
	}
	return report, nil
}

// nextSeqInDir scans dir for BENCH_<n>.json reports and returns the
// next free sequence number.
func nextSeqInDir(dir string) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return 0, err
	}
	names := make([]string, len(matches))
	for i, m := range matches {
		names[i] = filepath.Base(m)
	}
	return perf.NextSeq(names), nil
}

func init() {
	// Register the testing package's flags (test.benchtime et al.) so
	// runSuite can budget testing.Benchmark via flag.Set.
	testing.Init()
}
