// Command ppmtop renders the cluster live-status dashboard: it builds a
// deterministic scripted installation (a coordinator plus one worker
// per host, with enough control traffic to populate the per-op latency
// histograms), then gathers a cluster-wide status sweep and prints one
// sorted row per host — process table, load, pending timers, daemon
// state, circuit table with per-circuit state and age, reply-cache and
// retry-backoff occupancy, journal ring occupancy, and p50/p95/p99
// latency per sibling-RPC op type.
//
// -watch N re-sweeps every N virtual seconds inside the scripted run
// (-sweeps K bounds how many), so the dashboard shows occupancies
// moving. -partition splits the installation in half mid-run: the sweep
// from the origin's half completes with the other half listed as
// unreachable, then the partition heals and a final sweep covers every
// host again. Everything runs on virtual time from a fixed seed, so two
// runs with the same flags are byte-identical.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ppm"
	"ppm/internal/journal"
)

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: ppmtop [-hosts N] [-seed S] [-watch N [-sweeps K]] [-partition]\n")
}

// options is the validated command line.
type options struct {
	hosts     int
	seed      int64
	watch     int
	sweeps    int
	partition bool
}

// parseArgs parses and strictly validates the command line: positional
// arguments are rejected, -sweeps requires -watch, and -partition is
// mutually exclusive with -watch (each mode scripts its own sweep
// schedule).
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("ppmtop", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.IntVar(&o.hosts, "hosts", 8, "number of hosts in the installation (2..32)")
	fs.Int64Var(&o.seed, "seed", 1, "deterministic simulation seed (> 0)")
	fs.IntVar(&o.watch, "watch", 0,
		"re-sweep every N virtual seconds inside the run (0 = single sweep)")
	fs.IntVar(&o.sweeps, "sweeps", 3, "number of sweeps under -watch")
	fs.BoolVar(&o.partition, "partition", false,
		"partition the installation in half mid-run, then heal it")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if o.hosts < 2 || o.hosts > 32 {
		return o, fmt.Errorf("-hosts must be between 2 and 32, got %d", o.hosts)
	}
	if o.seed <= 0 {
		return o, fmt.Errorf("-seed must be > 0, got %d", o.seed)
	}
	if o.watch < 0 {
		return o, fmt.Errorf("-watch must be >= 0, got %d", o.watch)
	}
	if o.sweeps < 1 {
		return o, fmt.Errorf("-sweeps must be >= 1, got %d", o.sweeps)
	}
	if o.sweeps != 3 && o.watch == 0 {
		return o, errors.New("-sweeps requires -watch")
	}
	if o.partition && o.watch != 0 {
		return o, errors.New("-partition is mutually exclusive with -watch")
	}
	return o, nil
}

func main() {
	o, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			usage(os.Stdout)
			return
		}
		fmt.Fprintln(os.Stderr, "ppmtop:", err)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "ppmtop:", err)
		os.Exit(1)
	}
}

// sweep gathers one cluster-wide status sweep from origin and prints
// the rendered dashboard.
func sweep(cluster *ppm.Cluster, origin string) error {
	rep, err := cluster.StatusReport("op", origin)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

func run(o options) error {
	names := make([]string, o.hosts)
	specs := make([]ppm.HostSpec, o.hosts)
	for i := range specs {
		names[i] = fmt.Sprintf("h%02d", i+1)
		specs[i] = ppm.HostSpec{Name: names[i]}
	}
	cc := ppm.ClusterConfig{Seed: o.seed, Hosts: specs}
	if o.partition {
		// Partitioned gathers exhaust their retries before a host is
		// declared unreachable; keep the retry budget small so the sweep
		// settles quickly.
		cc.LPM.Retry = ppm.RetryPolicy{MaxAttempts: 2}
	}
	cluster, err := ppm.NewCluster(cc)
	if err != nil {
		return err
	}
	cluster.AddUser("op")
	origin := names[0]
	sess, err := cluster.Attach("op", origin)
	if err != nil {
		return err
	}

	// The scripted computation: a coordinator on the origin host with
	// one worker per other host. The remote creations open the circuit
	// graph and seed the CreateProc latency histogram.
	root, err := sess.Run(origin, "coordinator")
	if err != nil {
		return err
	}
	workers := make([]ppm.GPID, 0, o.hosts-1)
	for _, h := range names[1:] {
		w, err := sess.RunChild(h, "worker-"+h, root)
		if err != nil {
			return err
		}
		workers = append(workers, w)
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}
	// Control traffic and a snapshot populate the Control and Broadcast
	// latency histograms.
	for _, w := range workers {
		if err := sess.Stop(w); err != nil {
			return err
		}
	}
	if _, err := sess.ContinueAll(); err != nil {
		return err
	}
	if _, err := sess.Snapshot(); err != nil {
		return err
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}

	switch {
	case o.partition:
		if err := sweep(cluster, origin); err != nil {
			return err
		}
		half := o.hosts / 2
		near, far := names[:half], names[half:]
		fmt.Printf("--- partition: %s | %s ---\n",
			strings.Join(near, ","), strings.Join(far, ","))
		if err := cluster.Partition(near, far); err != nil {
			return err
		}
		if err := cluster.Advance(2 * time.Second); err != nil {
			return err
		}
		if err := sweep(cluster, origin); err != nil {
			return err
		}
		fmt.Println("--- heal ---")
		cluster.Heal()
		if err := cluster.Advance(2 * time.Second); err != nil {
			return err
		}
		if err := sweep(cluster, origin); err != nil {
			return err
		}
	case o.watch > 0:
		for i := 0; i < o.sweeps; i++ {
			if i > 0 {
				if err := cluster.Advance(time.Duration(o.watch) * time.Second); err != nil {
					return err
				}
			}
			if err := sweep(cluster, origin); err != nil {
				return err
			}
		}
	default:
		if err := sweep(cluster, origin); err != nil {
			return err
		}
	}

	if vs := cluster.JournalAudit(); len(vs) > 0 {
		fmt.Println("journal audit:")
		fmt.Print(journal.AuditReport(vs))
		return errors.New("journal audit found violations")
	}
	fmt.Println("journal audit: clean")
	return nil
}
