package main

import "testing"

func TestRunSingleTables(t *testing.T) {
	// Table 1 is the expensive one; cover tables 2-3 and figure 2 plus
	// ablations here (the full Table 1 sweep is covered by the root
	// package's tests and benchmarks).
	if err := run(2, 0, false, false, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run(3, 0, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 2, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 0, true, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetricsExperiments(t *testing.T) {
	if err := run(0, 0, false, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunLatencyAttributionExperiment(t *testing.T) {
	if err := run(0, 0, false, false, false, true); err != nil {
		t.Fatal(err)
	}
}
