// Command experiments regenerates every table and figure of the
// paper's evaluation section, printing measured (virtual-time) values
// next to the published ones, plus the ablation studies of DESIGN.md.
//
// Usage:
//
//	experiments               # everything
//	experiments -table 1      # only Table 1
//	experiments -table 2      # only Table 2 (+ the §8 remote create)
//	experiments -table 2 -breakdown
//	                          # Table 2 plus its traced decomposition
//	                          # (network / dispatch / kernel columns)
//	experiments -attribution  # profile-phase latency attribution of the
//	                          # Table 2 line (second-hop delta per phase)
//	experiments -table 3      # only Table 3 / Figure 5
//	experiments -figure 2     # only the Figure 2 LPM-creation exchange
//	experiments -ablations    # only the ablations
//	experiments -metrics      # only the message-count experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ppm"
)

func main() {
	table := flag.Int("table", 0, "run only this table (1-3)")
	figure := flag.Int("figure", 0, "run only this figure (2)")
	ablations := flag.Bool("ablations", false, "run only the ablations")
	metricsOnly := flag.Bool("metrics", false, "run only the message-count experiments")
	breakdown := flag.Bool("breakdown", false,
		"with -table 2: decompose each cell into network/dispatch/kernel from a traced run")
	attribution := flag.Bool("attribution", false,
		"run only the profiler's latency attribution of the Table 2 line")
	flag.Parse()
	if *breakdown && *table != 2 {
		fmt.Fprintln(os.Stderr, "experiments: -breakdown requires -table 2")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*table, *figure, *ablations, *metricsOnly, *breakdown, *attribution); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(table, figure int, onlyAblations, onlyMetrics, breakdown, attribution bool) error {
	all := table == 0 && figure == 0 && !onlyAblations && !onlyMetrics && !attribution

	if all || table == 1 {
		rows, err := ppm.RunTable1()
		if err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
		fmt.Print(ppm.FormatTable1(rows))
		fmt.Println()
	}
	if all || table == 2 {
		rows, err := ppm.RunTable2()
		if err != nil {
			return fmt.Errorf("table 2: %w", err)
		}
		fmt.Print(ppm.FormatTable2(rows))
		if breakdown {
			brows, err := ppm.RunTable2Breakdown()
			if err != nil {
				return fmt.Errorf("table 2 breakdown: %w", err)
			}
			fmt.Println()
			fmt.Print(ppm.FormatTable2Breakdown(brows))
		}
		measured, paper, err := ppm.RemoteCreateWarm()
		if err != nil {
			return fmt.Errorf("remote create: %w", err)
		}
		fmt.Printf("§8 remote create over a warm circuit: measured %.1f ms, paper %.0f ms\n\n",
			measured, paper)
	}
	if all || attribution {
		rows, err := ppm.RunLatencyAttribution()
		if err != nil {
			return fmt.Errorf("latency attribution: %w", err)
		}
		fmt.Print(ppm.FormatLatencyAttribution(rows))
		fmt.Println()
	}
	if all || table == 3 {
		rows, err := ppm.RunTable3()
		if err != nil {
			return fmt.Errorf("table 3: %w", err)
		}
		fmt.Print(ppm.FormatTable3(rows))
		fmt.Println()
	}
	if all || figure == 2 {
		res, err := ppm.RunFigure2()
		if err != nil {
			return fmt.Errorf("figure 2: %w", err)
		}
		fmt.Printf("Figure 2: LPM creation ab initio %.1f ms; finding an existing LPM %.1f ms\n",
			res.CreateMS, res.FindMS)
		o := ppm.RunOverhead()
		fmt.Printf("§6 overhead: untraced syscall check %.0f ns (negligible); "+
			"zero-load kernel->LPM delivery %.2f ms\n\n", o.UntracedCheckNS, o.TracedDeliveryMS)
	}
	if all || onlyAblations {
		fmt.Println("Ablations (design choices, DESIGN.md §6)")
		reuseMS, forkMS, reuseForks, noReuseForks, err := ppm.AblationHandlerReuse()
		if err != nil {
			return fmt.Errorf("handler ablation: %w", err)
		}
		fmt.Printf("  handler reuse: %.1f ms/op (%d forks) vs fork-per-request %.1f ms/op (%d forks)\n",
			reuseMS, reuseForks, forkMS, noReuseForks)
		circuitMS, datagramMS, err := ppm.AblationCircuitVsDatagramAuth()
		if err != nil {
			return fmt.Errorf("auth ablation: %w", err)
		}
		fmt.Printf("  auth-once circuits: %.1f ms/op vs per-message auth %.1f ms/op\n",
			circuitMS, datagramMS)
		onDemand, fullMesh, err := ppm.AblationOnDemandVsFullMesh(6)
		if err != nil {
			return fmt.Errorf("mesh ablation: %w", err)
		}
		fmt.Printf("  circuits on 6 hosts (2 active): on-demand %d vs full mesh %d\n",
			onDemand, fullMesh)
		points, err := ppm.AblationDedupWindow([]time.Duration{
			time.Millisecond, time.Second, time.Minute,
		})
		if err != nil {
			return fmt.Errorf("dedup ablation: %w", err)
		}
		for _, p := range points {
			fmt.Printf("  dedup window %8v: %d duplicate snapshot records, %d suppressed floods\n",
				p.Window, p.DuplicateRecs, p.Suppressed)
		}
		relayFirst, directFirst, relaySteady, directSteady, err := ppm.AblationRelayVsDirect()
		if err != nil {
			return fmt.Errorf("relay ablation: %w", err)
		}
		fmt.Printf("  routing to a distant host: first op relay %.1f ms vs direct+setup %.1f ms;\n"+
			"                             steady state relay %.1f ms vs direct %.1f ms\n",
			relayFirst, directFirst, relaySteady, directSteady)
		fmt.Println()
	}
	if all || onlyMetrics {
		rows, err := ppm.RunBroadcastFanout(nil)
		if err != nil {
			return fmt.Errorf("fanout: %w", err)
		}
		fmt.Print(ppm.FormatFanout(rows))
		fmt.Println()
		rec, err := ppm.RunRecoveryCost()
		if err != nil {
			return fmt.Errorf("recovery cost: %w", err)
		}
		fmt.Print(ppm.FormatRecoveryCost(rec))
	}
	return nil
}
