// Command ppmsh is a small shell over a simulated PPM installation: it
// reads commands from stdin, drives the virtual clock, and exercises
// every user-facing facility of the paper — remote creation, control
// across machine boundaries, snapshots, broadcast interrupts, resource
// statistics, history, event-driven actions, and failure injection.
//
// Commands:
//
//	hosts                         list hosts and their load averages
//	run <host> <name>             create an adopted process
//	child <host> <name> <h,p>     create with an explicit logical parent
//	snap                          genealogy snapshot (Figure 1 display)
//	ps                            tabular process listing with resources
//	locate <name>                 execution sites of processes by name
//	stop|cont|kill <h,p>          process control anywhere
//	stopall | contall | killall   broadcast control
//	stats <h,p>                   resource consumption (pstat)
//	fds <h,p>                     open descriptors (fdstat)
//	hist [h,p]                    event history timeline
//	watch <event> <h,p> <op> <h,p> event-driven action on the observer's host
//	trace on|show|off             network-level message tracing
//	crash <host> | restart <host> failure injection
//	part <h1,h2|h3,...>           network partition; "heal" to undo
//	sleep <dur>                   advance virtual time
//	time                          print the virtual clock
//	quit
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ppm"
	"ppm/internal/simnet"
	"ppm/internal/tools"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppmsh:", err)
		os.Exit(1)
	}
}

func parseGPID(s string) (ppm.GPID, error) {
	s = strings.TrimPrefix(strings.TrimSuffix(s, ">"), "<")
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return ppm.GPID{}, fmt.Errorf("bad process id %q (want host,pid)", s)
	}
	pid, err := strconv.Atoi(parts[1])
	if err != nil {
		return ppm.GPID{}, fmt.Errorf("bad pid in %q", s)
	}
	return ppm.GPID{Host: parts[0], PID: ppm.PID(pid)}, nil
}

func run(in io.Reader, out io.Writer) error {
	hosts := []ppm.HostSpec{
		{Name: "vax1", Type: ppm.VAX780},
		{Name: "vax2", Type: ppm.VAX750},
		{Name: "sun1", Type: ppm.SunII},
	}
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{Hosts: hosts})
	if err != nil {
		return err
	}
	cluster.AddUser("user")
	cluster.SetRecoveryList("user", "vax1", "vax2", "sun1")
	sess, err := cluster.Attach("user", "vax1")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ppm shell: user@vax1, hosts vax1 (VAX 780), vax2 (VAX 750), sun1 (Sun II)\n")

	st := &shellState{}
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprintf(out, "ppm> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if err := dispatch(cluster, sess, st, out, fields); err != nil {
			if err == errQuit {
				return nil
			}
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

// shellState carries mutable shell session state across commands.
type shellState struct {
	netTrace *simnet.TraceCollector
}

func dispatch(cluster *ppm.Cluster, sess *ppm.Session, st *shellState, out io.Writer, fields []string) error {
	cmd, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s: need %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "quit", "exit":
		return errQuit

	case "time":
		fmt.Fprintf(out, "%v\n", cluster.Now())

	case "hosts":
		for _, h := range cluster.Network().Hosts() {
			la, err := cluster.LoadAvg(h)
			status := "up"
			if !cluster.Network().Up(h) {
				status = "down"
				la, err = 0, nil
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %-6s %-5s la=%.2f\n", h, status, la)
		}

	case "run":
		if err := need(2); err != nil {
			return err
		}
		id, err := sess.Run(args[0], args[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "created %s\n", id)

	case "child":
		if err := need(3); err != nil {
			return err
		}
		parent, err := parseGPID(args[2])
		if err != nil {
			return err
		}
		id, err := sess.RunChild(args[0], args[1], parent)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "created %s (parent %s)\n", id, parent)

	case "snap":
		snap, err := sess.Snapshot()
		if err != nil {
			return err
		}
		fmt.Fprint(out, snap.Render())

	case "ps":
		snap, err := sess.Snapshot()
		if err != nil {
			return err
		}
		fmt.Fprint(out, tools.FormatSnapshotTable(snap))

	case "locate":
		if err := need(1); err != nil {
			return err
		}
		ids, err := sess.Locate(args[0])
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			fmt.Fprintf(out, "no process named %q\n", args[0])
			break
		}
		for _, id := range ids {
			fmt.Fprintf(out, "  %s\n", id)
		}

	case "stop", "cont", "kill":
		if err := need(1); err != nil {
			return err
		}
		id, err := parseGPID(args[0])
		if err != nil {
			return err
		}
		switch cmd {
		case "stop":
			err = sess.Stop(id)
		case "cont":
			err = sess.Foreground(id)
		case "kill":
			err = sess.Kill(id)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s %s ok\n", cmd, id)

	case "stopall", "contall", "killall":
		var n int
		var err error
		switch cmd {
		case "stopall":
			n, err = sess.StopAll()
		case "contall":
			n, err = sess.ContinueAll()
		case "killall":
			n, err = sess.KillAll()
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s affected %d processes\n", cmd, n)

	case "stats":
		if err := need(1); err != nil {
			return err
		}
		id, err := parseGPID(args[0])
		if err != nil {
			return err
		}
		info, err := sess.Stats(id)
		if err != nil {
			return err
		}
		fmt.Fprint(out, tools.FormatStats(info))

	case "fds":
		if err := need(1); err != nil {
			return err
		}
		id, err := parseGPID(args[0])
		if err != nil {
			return err
		}
		open, err := sess.OpenFiles(id)
		if err != nil {
			return err
		}
		fmt.Fprint(out, tools.FormatFDs(id, open))

	case "hist":
		q := ppm.HistoryQuery{}
		if len(args) > 0 {
			id, err := parseGPID(args[0])
			if err != nil {
				return err
			}
			q.Proc = id
		}
		evs, err := sess.History(q)
		if err != nil {
			return err
		}
		fmt.Fprint(out, tools.FormatTimeline(evs))

	case "watch":
		// watch exit <vax2,6> kill <vax1,7>
		if err := need(4); err != nil {
			return err
		}
		kinds := map[string]ppm.EventKind{
			"exit": ppm.EvExit, "stop": ppm.EvStop, "cont": ppm.EvCont,
			"fork": ppm.EvFork, "exec": ppm.EvExec,
		}
		kind, ok := kinds[args[0]]
		if !ok {
			return fmt.Errorf("watch: unknown event %q", args[0])
		}
		observed, err := parseGPID(args[1])
		if err != nil {
			return err
		}
		ops := map[string]ppm.ControlOp{
			"stop": ppm.OpStop, "cont": ppm.OpForeground, "kill": ppm.OpKill,
		}
		op, ok := ops[args[2]]
		if !ok {
			return fmt.Errorf("watch: unknown action %q", args[2])
		}
		target, err := parseGPID(args[3])
		if err != nil {
			return err
		}
		if _, err := sess.OnEventAt(observed.Host, &ppm.Watch{
			Kind: kind, Proc: observed,
		}, op, 0, target); err != nil {
			return err
		}
		fmt.Fprintf(out, "watch installed on %s: %s of %s -> %s %s\n",
			observed.Host, args[0], observed, args[2], target)

	case "trace":
		if err := need(1); err != nil {
			return err
		}
		switch args[0] {
		case "on":
			st.netTrace = cluster.TraceNetwork(0)
			fmt.Fprintln(out, "network trace armed")
		case "show":
			if st.netTrace == nil {
				return fmt.Errorf("trace: not armed (use 'trace on')")
			}
			fmt.Fprint(out, st.netTrace.Format())
		case "off":
			cluster.Network().SetTap(nil)
			st.netTrace = nil
			fmt.Fprintln(out, "network trace off")
		default:
			return fmt.Errorf("trace: on|show|off")
		}

	case "crash":
		if err := need(1); err != nil {
			return err
		}
		if err := cluster.Crash(args[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s crashed\n", args[0])

	case "restart":
		if err := need(1); err != nil {
			return err
		}
		if err := cluster.Restart(args[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s restarted\n", args[0])

	case "part":
		if err := need(1); err != nil {
			return err
		}
		var groups [][]string
		for _, g := range strings.Split(args[0], "|") {
			groups = append(groups, strings.Split(g, ","))
		}
		if err := cluster.Partition(groups...); err != nil {
			return err
		}
		fmt.Fprintf(out, "partitioned: %s\n", args[0])

	case "heal":
		cluster.Heal()
		fmt.Fprintln(out, "healed")

	case "sleep":
		if err := need(1); err != nil {
			return err
		}
		d, err := time.ParseDuration(args[0])
		if err != nil {
			return err
		}
		if err := cluster.Advance(d); err != nil {
			return err
		}
		fmt.Fprintf(out, "now %v\n", cluster.Now())

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
