package main

import (
	"strings"
	"testing"
)

func shell(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := run(strings.NewReader(script), &out); err != nil {
		t.Fatalf("shell error: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

func TestShellRunSnapControlStats(t *testing.T) {
	out := shell(t, `
hosts
run vax2 compute
snap
stop <vax2,6>
snap
cont <vax2,6>
stats <vax2,6>
fds <vax2,6>
kill <vax2,6>
stats <vax2,6>
quit
`)
	for _, want := range []string{
		"vax1   up",
		"created <vax2,6>",
		"<vax2,6> compute",
		"(stopped)",
		"state=running",
		"open descriptors",
		"state=exited",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellBroadcastAndHistory(t *testing.T) {
	out := shell(t, `
run vax1 a
run vax2 b
stopall
contall
hist <vax1,6>
killall
quit
`)
	if !strings.Contains(out, "stopall affected 2 processes") {
		t.Fatalf("stopall:\n%s", out)
	}
	if !strings.Contains(out, "killall affected 2 processes") {
		t.Fatalf("killall:\n%s", out)
	}
	if !strings.Contains(out, "stop") || !strings.Contains(out, "cont") {
		t.Fatalf("history missing events:\n%s", out)
	}
}

func TestShellFailureInjection(t *testing.T) {
	out := shell(t, `
run vax2 victim
crash vax2
sleep 5s
snap
restart vax2
part vax1|vax2,sun1
heal
time
quit
`)
	for _, want := range []string{
		"vax2 crashed",
		"partial",
		"vax2 restarted",
		"partitioned: vax1|vax2,sun1",
		"healed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellErrorsAreReported(t *testing.T) {
	out := shell(t, `
stop nonsense
stop <vax1,999>
run onehost
frobnicate
sleep xyz
quit
`)
	if strings.Count(out, "error:") < 5 {
		t.Fatalf("errors not reported:\n%s", out)
	}
}

func TestShellChildGenealogy(t *testing.T) {
	out := shell(t, `
run vax1 root
child vax2 kid <vax1,6>
snap
quit
`)
	if !strings.Contains(out, "└── <vax2,6> kid") {
		t.Fatalf("genealogy not shown:\n%s", out)
	}
}

func TestParseGPID(t *testing.T) {
	id, err := parseGPID("<vax1,42>")
	if err != nil || id.Host != "vax1" || id.PID != 42 {
		t.Fatalf("id=%v err=%v", id, err)
	}
	if _, err := parseGPID("junk"); err == nil {
		t.Fatal("bad gpid accepted")
	}
	if _, err := parseGPID("vax1,notanumber"); err == nil {
		t.Fatal("bad pid accepted")
	}
}

func TestShellNetworkTrace(t *testing.T) {
	out := shell(t, `
trace on
run vax2 job
trace show
trace off
quit
`)
	for _, want := range []string{"trace armed", "from", "vax1", "vax2", "trace off"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellWatchCommand(t *testing.T) {
	out := shell(t, `
run vax2 sentinel
run vax1 reactor
watch exit <vax2,6> stop <vax1,6>
kill <vax2,6>
sleep 3s
snap
quit
`)
	if !strings.Contains(out, "watch installed on vax2") {
		t.Fatalf("watch not installed:\n%s", out)
	}
	if !strings.Contains(out, "reactor (stopped)") {
		t.Fatalf("watch action did not stop the reactor:\n%s", out)
	}
}

func TestShellPsTable(t *testing.T) {
	out := shell(t, `
run vax1 root
child vax2 kid <vax1,6>
ps
quit
`)
	for _, want := range []string{"process", "state", "running", "<vax1,6> root", "  <vax2,6> kid"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestShellLocate(t *testing.T) {
	out := shell(t, `
run vax1 worker
run vax2 worker
locate worker
locate ghost
quit
`)
	if !strings.Contains(out, "<vax1,6>") || !strings.Contains(out, "<vax2,6>") {
		t.Fatalf("locate output:\n%s", out)
	}
	if !strings.Contains(out, `no process named "ghost"`) {
		t.Fatalf("ghost case:\n%s", out)
	}
}
