// Command ppmlint is the invariant checker for this repo: a
// go/analysis multichecker speaking the `go vet -vettool` protocol.
//
// Usage:
//
//	go build -o /tmp/ppmlint ./cmd/ppmlint
//	go vet -vettool=/tmp/ppmlint ./...
//
// It enforces the four determinism invariants the golden-output CI job
// depends on:
//
//	walltime      no time.Now/Since/Sleep/... outside internal/sim,
//	              cmd/, and tests
//	rawgoroutine  no go statements outside tests
//	unseededrand  no global math/rand or crypto/rand outside internal/sim
//	maporder      no map iteration with order-sensitive effects unless
//	              keys are sorted first
//
// and the four protocol-surface and hot-path invariants:
//
//	wireop        every wire op constant has an opSpecs manifest row
//	              (name, role, journal kind) and every request op a
//	              dispatch site under the //ppmlint:protocolroot package
//	journalkind   journal record kinds are registered constants, never
//	              ad-hoc strings at append sites; registered kinds
//	              nobody appends are dead
//	hotalloc      //ppmlint:hotpath functions contain no known-
//	              allocating constructs, and each names its
//	              AllocsPerRun pin test (pin=<TestName>)
//	errdrop       no discarded error returns (`_ =` or bare call)
//	              outside tests and cmd/ flag parsing
//
// A finding can be silenced for one line by the comment
// //ppmlint:allow <analyzer> <reason> on the line above; an allowance
// that silences nothing is itself reported with the file:line it
// covered. See DESIGN.md "Determinism invariants".
//
// Exit codes mirror internal/perf's compare policy: 0 clean, 1 at
// least one finding (or unused allowance), 2 harness error (bad
// invocation, unreadable config, typecheck or analyzer failure) — so a
// red CI job is immediately diagnosable as lint debt versus a broken
// lint run.
package main

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"ppm/internal/analysis/errdrop"
	"ppm/internal/analysis/hotalloc"
	"ppm/internal/analysis/journalkind"
	"ppm/internal/analysis/maporder"
	"ppm/internal/analysis/rawgoroutine"
	"ppm/internal/analysis/unseededrand"
	"ppm/internal/analysis/walltime"
	"ppm/internal/analysis/wireop"
)

// suite lists the enforced invariants: the determinism four and the
// protocol-surface/hot-path four.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		walltime.Analyzer,
		rawgoroutine.Analyzer,
		unseededrand.Analyzer,
		maporder.Analyzer,
		wireop.Analyzer,
		journalkind.Analyzer,
		hotalloc.Analyzer,
		errdrop.Analyzer,
	}
}

func main() {
	unitchecker.Main(suite()...)
}
