// Command ppmlint is the determinism-invariant checker for this repo:
// a go/analysis multichecker speaking the `go vet -vettool` protocol.
//
// Usage:
//
//	go build -o /tmp/ppmlint ./cmd/ppmlint
//	go vet -vettool=/tmp/ppmlint ./...
//
// It enforces the four invariants the golden-output CI job depends on:
//
//	walltime      no time.Now/Since/Sleep/... outside internal/sim,
//	              cmd/, and tests
//	rawgoroutine  no go statements outside tests
//	unseededrand  no global math/rand or crypto/rand outside internal/sim
//	maporder      no map iteration with order-sensitive effects unless
//	              keys are sorted first
//
// A finding can be silenced for one line by the comment
// //ppmlint:allow <analyzer> on the line above; an allowance that
// silences nothing is itself reported. See DESIGN.md "Determinism
// invariants".
package main

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"ppm/internal/analysis/maporder"
	"ppm/internal/analysis/rawgoroutine"
	"ppm/internal/analysis/unseededrand"
	"ppm/internal/analysis/walltime"
)

// suite lists the enforced determinism invariants.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		walltime.Analyzer,
		rawgoroutine.Analyzer,
		unseededrand.Analyzer,
		maporder.Analyzer,
	}
}

func main() {
	unitchecker.Main(suite()...)
}
