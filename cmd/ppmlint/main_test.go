package main

import (
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestSuiteIsValid runs the go/analysis validator over the suite: it
// catches duplicate names, bad documentation, dependency cycles and
// undeclared fact types before go vet ever loads the tool.
func TestSuiteIsValid(t *testing.T) {
	if err := analysis.Validate(suite()); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteCoversAllInvariants(t *testing.T) {
	want := map[string]bool{
		"walltime": true, "rawgoroutine": true,
		"unseededrand": true, "maporder": true,
		"wireop": true, "journalkind": true,
		"hotalloc": true, "errdrop": true,
	}
	for _, a := range suite() {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want { // want is drained, order is irrelevant
		t.Errorf("missing analyzer %q", name)
	}
}
