package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildLint compiles the ppmlint binary into a temp dir once per test
// run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ppmlint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building ppmlint: %v\n%s", err, out)
	}
	return bin
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running ppmlint: %v", err)
	}
	return ee.ExitCode()
}

// TestExitCodePolicy: ppmlint mirrors internal/perf's compare policy —
// findings exit 1, harness errors exit 2 — so a red lint job is
// diagnosable from its exit status alone.
func TestExitCodePolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the ppmlint binary")
	}
	bin := buildLint(t)

	// Harness errors: bad invocation, missing config, malformed config.
	badCfg := filepath.Join(t.TempDir(), "bad.cfg")
	if err := os.WriteFile(badCfg, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"not-a-config"},
		{filepath.Join(t.TempDir(), "missing.cfg")},
		{badCfg},
	} {
		if code := exitCode(t, exec.Command(bin, args...).Run()); code != 2 {
			t.Errorf("ppmlint %v: exit %d, want 2 (harness error)", args, code)
		}
	}

	// Findings: a synthetic single-file unit with a raw go statement
	// must exit 1 (and a clean unit 0).
	dir := t.TempDir()
	dirty := filepath.Join(dir, "dirty.go")
	if err := os.WriteFile(dirty, []byte("package p\n\nfunc f() { go f() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	clean := filepath.Join(dir, "clean.go")
	if err := os.WriteFile(clean, []byte("package q\n\nfunc g() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name, file, pkg string
		want            int
	}{
		{"finding", dirty, "p", 1},
		{"clean", clean, "q", 0},
	} {
		cfg := map[string]interface{}{
			"ID":         tc.pkg,
			"Compiler":   "gc",
			"Dir":        dir,
			"ImportPath": tc.pkg,
			"GoFiles":    []string{tc.file},
			"ImportMap":  map[string]string{},
			"VetxOutput": filepath.Join(dir, tc.pkg+".vetx"),
		}
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfgPath := filepath.Join(dir, tc.pkg+".cfg")
		if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		out, runErr := exec.Command(bin, cfgPath).CombinedOutput()
		if code := exitCode(t, runErr); code != tc.want {
			t.Errorf("%s unit: exit %d, want %d\noutput:\n%s", tc.name, code, tc.want, out)
		}
	}
}
