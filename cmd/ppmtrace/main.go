// Command ppmtrace demonstrates the PPM's historical information
// facilities: it runs a multi-host computation under full event
// tracing, then prints the recorded timeline, the per-kind reduction,
// the IPC activity analysis and an event-rate histogram — the data
// gathering, reduction and display tools of the paper's Section 7.
//
// With --spans the stop of the remote worker runs under causal
// tracing and the assembled cross-host span waterfall is printed.
// With --metrics it additionally prints the installation-wide metrics
// report: what the simulated network, wire protocol, kernels, daemons
// and LPMs counted while the scenario ran. With --status it prints the
// cluster live-status dashboard: one row per host with process table,
// load, circuit table, reliability-layer occupancies and per-op latency
// percentiles (see also cmd/ppmtop). With --journal it instead
// prints the flight-recorder journal: the ordered stream of structured
// events every layer appended while the scenario ran, filterable by
// kind, host and virtual-time window. -hosts N (2..5) widens the
// scenario to N hosts with one worker per extra host. -drops N loses
// every Nth inter-host message once the computation is up, so the run
// exercises the sibling-RPC retry/redial layer — deterministically:
// same flags, same journal, losses included. -flap N runs N down/up
// cycles of the vax1<->vax2 link with the adaptive failure detector
// monitoring every circuit, so the run exercises the full circuit
// lifecycle (Established -> Suspect -> Closed -> redial) — equally
// deterministic.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ppm"
	"ppm/internal/journal"
	"ppm/internal/tools"
)

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: ppmtrace [-hosts N] [-drops N] [-flap N] [-spans] [-metrics] [-status] [-journal"+
		" [-journal-kinds K,...] [-journal-host H] [-journal-since D] [-journal-until D]]\n")
	fmt.Fprintf(w, "journal record kinds: %s\n", kindList())
}

func kindList() string {
	var names []string
	for _, k := range journal.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, " ")
}

// options is the validated command line.
type options struct {
	hosts        int
	drops        int
	flap         int
	showSpans    bool
	showMetrics  bool
	showStatus   bool
	showJournal  bool
	journalKinds []journal.Kind
	journalHost  string
	journalSince time.Duration
	journalUntil time.Duration
}

// parseArgs parses and strictly validates the command line: positional
// arguments are rejected, -journal excludes the other report flags, the
// journal filter flags require -journal, and every requested kind must
// name a known record kind (or a dotted prefix of one, e.g. "net").
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("ppmtrace", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.IntVar(&o.hosts, "hosts", 2, "number of hosts in the scenario (2..5)")
	fs.IntVar(&o.drops, "drops", 0,
		"lose every Nth inter-host message once the computation is up (0 = lossless)")
	fs.IntVar(&o.flap, "flap", 0,
		"flap the vax1<->vax2 link N down/up cycles with the failure detector on (0 = stable)")
	fs.BoolVar(&o.showSpans, "spans", false,
		"trace the remote stop and print the causal span waterfall")
	fs.BoolVar(&o.showMetrics, "metrics", false,
		"print the cluster metrics report after the trace output")
	fs.BoolVar(&o.showStatus, "status", false,
		"print the cluster live-status dashboard after the trace output")
	fs.BoolVar(&o.showJournal, "journal", false,
		"print the flight-recorder journal after the trace output")
	kinds := fs.String("journal-kinds", "",
		"comma-separated record kinds (or kind prefixes) to show")
	fs.StringVar(&o.journalHost, "journal-host", "",
		"only journal records attributed to this host")
	fs.DurationVar(&o.journalSince, "journal-since", 0,
		"only journal records at or after this virtual time")
	fs.DurationVar(&o.journalUntil, "journal-until", 0,
		"only journal records at or before this virtual time")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if o.hosts < 2 || o.hosts > 5 {
		return o, fmt.Errorf("-hosts must be between 2 and 5, got %d", o.hosts)
	}
	if o.drops < 0 {
		return o, fmt.Errorf("-drops must be >= 0, got %d", o.drops)
	}
	if o.flap < 0 {
		return o, fmt.Errorf("-flap must be >= 0, got %d", o.flap)
	}
	if o.showJournal && (o.showSpans || o.showMetrics || o.showStatus) {
		return o, errors.New("-journal is mutually exclusive with -spans, -metrics and -status")
	}
	if !o.showJournal && (*kinds != "" || o.journalHost != "" ||
		o.journalSince != 0 || o.journalUntil != 0) {
		return o, errors.New("-journal-kinds, -journal-host, -journal-since and -journal-until require -journal")
	}
	if *kinds != "" {
		for _, s := range strings.Split(*kinds, ",") {
			k := journal.Kind(strings.TrimSpace(s))
			if !validKindOrPrefix(k) {
				return o, fmt.Errorf("unknown journal kind %q", k)
			}
			o.journalKinds = append(o.journalKinds, k)
		}
	}
	return o, nil
}

// validKindOrPrefix accepts exact record kinds and dotted prefixes that
// select a whole family ("net", "lpm.sibling", ...), matching the
// filter's prefix semantics.
func validKindOrPrefix(k journal.Kind) bool {
	if journal.ValidKind(k) {
		return true
	}
	for _, known := range journal.Kinds() {
		if strings.HasPrefix(string(known), string(k)+".") {
			return true
		}
	}
	return false
}

func main() {
	o, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			usage(os.Stdout)
			return
		}
		fmt.Fprintln(os.Stderr, "ppmtrace:", err)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "ppmtrace:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	specs := make([]ppm.HostSpec, o.hosts)
	for i := range specs {
		specs[i] = ppm.HostSpec{Name: fmt.Sprintf("vax%d", i+1)}
	}
	cc := ppm.ClusterConfig{Hosts: specs}
	if o.drops > 0 {
		// Losses sever circuits; give the retry engine headroom so the
		// scenario's control traffic still lands exactly once.
		cc.LPM.Retry = ppm.RetryPolicy{MaxAttempts: 6}
	}
	if o.flap > 0 {
		// Down windows sever circuits too, and the detector needs
		// heartbeats to drive the Suspect transitions the flap run is
		// meant to journal.
		cc.LPM.Retry = ppm.RetryPolicy{MaxAttempts: 6}
		cc.LPM.Linktest = 250 * time.Millisecond
	}
	cluster, err := ppm.NewCluster(cc)
	if err != nil {
		return err
	}
	cluster.AddUser("user")
	sess, err := cluster.Attach("user", "vax1")
	if err != nil {
		return err
	}

	// A small computation traced at the finest granularity.
	root, err := sess.Run("vax1", "coordinator")
	if err != nil {
		return err
	}
	if err := sess.SetTraceMask(root.PID, ppm.TraceAll); err != nil {
		return err
	}
	worker, err := sess.RunChild("vax2", "worker", root)
	if err != nil {
		return err
	}
	for i := 3; i <= o.hosts; i++ {
		h := fmt.Sprintf("vax%d", i)
		if _, err := sess.RunChild(h, "worker"+h[3:], root); err != nil {
			return err
		}
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}
	// With -drops, the computation is built lossless and then the rest
	// of the scenario — control, history floods, the traced stop — runs
	// over a lossy network, riding the reliability layer.
	cluster.InjectLoss(o.drops)
	// With -flap, the link to the worker host starts its down/up cycles
	// here: the control traffic below crosses the flap schedule and the
	// detector journals the circuit lifecycle around each outage.
	if o.flap > 0 {
		cluster.FlapLink("vax1", "vax2", 1200*time.Millisecond, 800*time.Millisecond, o.flap)
	}

	// Generate activity: syscalls, files, IPC, control.
	k1, err := cluster.Kernel("vax1")
	if err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		if err := k1.Syscall(root.PID, "read"); err != nil {
			return err
		}
		fd, err := k1.OpenFD(root.PID, fmt.Sprintf("/tmp/chunk%d", i))
		if err != nil {
			return err
		}
		k1.AccountIPC(root.PID, 1, 1, "worker channel")
		if err := k1.CloseFD(root.PID, fd); err != nil {
			return err
		}
		if err := cluster.Advance(300 * time.Millisecond); err != nil {
			return err
		}
	}
	var stopTrace uint64
	if o.showSpans {
		stopTrace, err = cluster.Trace(func() error { return sess.Stop(worker) })
	} else {
		err = sess.Stop(worker)
	}
	if err != nil {
		return err
	}
	if err := sess.Foreground(worker); err != nil {
		return err
	}
	if err := sess.Kill(worker); err != nil {
		return err
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}
	// Let every remaining flap cycle run out and the circuits re-knit,
	// so the journal carries the full lifecycle of each outage.
	if o.flap > 0 {
		if err := cluster.Advance(time.Duration(o.flap) * 2 * time.Second); err != nil {
			return err
		}
	}

	evs, err := sess.History(ppm.HistoryQuery{})
	if err != nil {
		return err
	}
	fmt.Println("=== event timeline ===")
	fmt.Print(tools.FormatTimeline(evs))

	fmt.Println("\n=== reduction ===")
	fmt.Print(sess.Manager().History().Reduce().Format())

	fmt.Println("\n=== IPC activity ===")
	fmt.Print(tools.FormatIPC(tools.AnalyzeIPC(evs)))

	fmt.Println("\n=== event rate (500ms buckets) ===")
	fmt.Print(tools.HistogramOf(evs, 500*time.Millisecond).Format())

	// The preserved record of the killed worker.
	info, err := sess.Stats(worker)
	if err != nil {
		return err
	}
	fmt.Println("\n=== exited worker record ===")
	fmt.Print(tools.FormatStats(info))

	if o.showSpans {
		fmt.Println()
		fmt.Print(cluster.TraceReport(stopTrace))
	}
	if o.showMetrics {
		fmt.Println()
		fmt.Print(cluster.MetricsReport())
	}
	if o.showStatus {
		status, err := cluster.StatusReport("user", "vax1")
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(status)
	}
	if o.showJournal {
		fmt.Println()
		fmt.Print(cluster.JournalReport(ppm.JournalFilter{
			Kinds: o.journalKinds,
			Host:  o.journalHost,
			Since: o.journalSince,
			Until: o.journalUntil,
		}))
	}
	return nil
}
