// Command ppmtrace demonstrates the PPM's historical information
// facilities: it runs a multi-host computation under full event
// tracing, then prints the recorded timeline, the per-kind reduction,
// the IPC activity analysis and an event-rate histogram — the data
// gathering, reduction and display tools of the paper's Section 7.
//
// With --spans the stop of the remote worker runs under causal
// tracing and the assembled cross-host span waterfall is printed.
// With --metrics it additionally prints the installation-wide metrics
// report: what the simulated network, wire protocol, kernels, daemons
// and LPMs counted while the scenario ran. -hosts N (2..5) widens the
// scenario to N hosts with one worker per extra host.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ppm"
	"ppm/internal/tools"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: ppmtrace [-hosts N] [-spans] [-metrics]\n")
	flag.PrintDefaults()
}

func main() {
	flag.Usage = usage
	hosts := flag.Int("hosts", 2, "number of hosts in the scenario (2..5)")
	showSpans := flag.Bool("spans", false,
		"trace the remote stop and print the causal span waterfall")
	showMetrics := flag.Bool("metrics", false,
		"print the cluster metrics report after the trace output")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ppmtrace: unexpected argument %q\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	if *hosts < 2 || *hosts > 5 {
		fmt.Fprintf(os.Stderr, "ppmtrace: -hosts must be between 2 and 5, got %d\n", *hosts)
		usage()
		os.Exit(2)
	}
	if err := run(*hosts, *showSpans, *showMetrics); err != nil {
		fmt.Fprintln(os.Stderr, "ppmtrace:", err)
		os.Exit(1)
	}
}

func run(hosts int, showSpans, showMetrics bool) error {
	specs := make([]ppm.HostSpec, hosts)
	for i := range specs {
		specs[i] = ppm.HostSpec{Name: fmt.Sprintf("vax%d", i+1)}
	}
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{Hosts: specs})
	if err != nil {
		return err
	}
	cluster.AddUser("user")
	sess, err := cluster.Attach("user", "vax1")
	if err != nil {
		return err
	}

	// A small computation traced at the finest granularity.
	root, err := sess.Run("vax1", "coordinator")
	if err != nil {
		return err
	}
	if err := sess.SetTraceMask(root.PID, ppm.TraceAll); err != nil {
		return err
	}
	worker, err := sess.RunChild("vax2", "worker", root)
	if err != nil {
		return err
	}
	for i := 3; i <= hosts; i++ {
		h := fmt.Sprintf("vax%d", i)
		if _, err := sess.RunChild(h, "worker"+h[3:], root); err != nil {
			return err
		}
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}

	// Generate activity: syscalls, files, IPC, control.
	k1, err := cluster.Kernel("vax1")
	if err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		if err := k1.Syscall(root.PID, "read"); err != nil {
			return err
		}
		fd, err := k1.OpenFD(root.PID, fmt.Sprintf("/tmp/chunk%d", i))
		if err != nil {
			return err
		}
		k1.AccountIPC(root.PID, 1, 1, "worker channel")
		if err := k1.CloseFD(root.PID, fd); err != nil {
			return err
		}
		if err := cluster.Advance(300 * time.Millisecond); err != nil {
			return err
		}
	}
	var stopTrace uint64
	if showSpans {
		stopTrace, err = cluster.Trace(func() error { return sess.Stop(worker) })
	} else {
		err = sess.Stop(worker)
	}
	if err != nil {
		return err
	}
	if err := sess.Foreground(worker); err != nil {
		return err
	}
	if err := sess.Kill(worker); err != nil {
		return err
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}

	evs, err := sess.History(ppm.HistoryQuery{})
	if err != nil {
		return err
	}
	fmt.Println("=== event timeline ===")
	fmt.Print(tools.FormatTimeline(evs))

	fmt.Println("\n=== reduction ===")
	fmt.Print(sess.Manager().History().Reduce().Format())

	fmt.Println("\n=== IPC activity ===")
	fmt.Print(tools.FormatIPC(tools.AnalyzeIPC(evs)))

	fmt.Println("\n=== event rate (500ms buckets) ===")
	fmt.Print(tools.HistogramOf(evs, 500*time.Millisecond).Format())

	// The preserved record of the killed worker.
	info, err := sess.Stats(worker)
	if err != nil {
		return err
	}
	fmt.Println("\n=== exited worker record ===")
	fmt.Print(tools.FormatStats(info))

	if showSpans {
		fmt.Println()
		fmt.Print(cluster.TraceReport(stopTrace))
	}
	if showMetrics {
		fmt.Println()
		fmt.Print(cluster.MetricsReport())
	}
	return nil
}
