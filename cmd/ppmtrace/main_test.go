package main

import (
	"strings"
	"testing"
	"time"

	"ppm/internal/journal"
)

func TestTraceDemoRuns(t *testing.T) {
	if err := run(options{hosts: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDemoWithMetrics(t *testing.T) {
	if err := run(options{hosts: 2, showMetrics: true}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDemoWithSpansAndMoreHosts(t *testing.T) {
	if err := run(options{hosts: 5, showSpans: true}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDemoWithJournal(t *testing.T) {
	err := run(options{hosts: 2, showJournal: true,
		journalKinds: []journal.Kind{"lpm.sibling", "net.circuit.open"},
		journalHost:  "vax1"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseArgsJournalFlags(t *testing.T) {
	o, err := parseArgs([]string{"-hosts", "3", "-journal",
		"-journal-kinds", "net,kernel.spawn", "-journal-host", "vax2",
		"-journal-since", "1s", "-journal-until", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if o.hosts != 3 || !o.showJournal {
		t.Fatalf("parsed %+v", o)
	}
	if len(o.journalKinds) != 2 || o.journalKinds[0] != "net" || o.journalKinds[1] != "kernel.spawn" {
		t.Fatalf("kinds = %v", o.journalKinds)
	}
	if o.journalHost != "vax2" || o.journalSince != time.Second || o.journalUntil != 5*time.Second {
		t.Fatalf("filter = %+v", o)
	}
}

func TestParseArgsRejections(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"positional", []string{"extra"}, "unexpected argument"},
		{"hosts range", []string{"-hosts", "9"}, "-hosts must be between"},
		{"journal vs spans", []string{"-journal", "-spans"}, "mutually exclusive"},
		{"journal vs metrics", []string{"-journal", "-metrics"}, "mutually exclusive"},
		{"kinds without journal", []string{"-journal-kinds", "net"}, "require -journal"},
		{"host without journal", []string{"-journal-host", "vax1"}, "require -journal"},
		{"since without journal", []string{"-journal-since", "1s"}, "require -journal"},
		{"unknown kind", []string{"-journal", "-journal-kinds", "bogus.kind"}, "unknown journal kind"},
		{"unknown flag", []string{"-frobnicate"}, "not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseArgs(tc.args); err == nil {
				t.Fatalf("parseArgs(%v) accepted, want error containing %q", tc.args, tc.want)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestParseArgsKindPrefixes(t *testing.T) {
	for _, ok := range []string{"net", "lpm.sibling", "wire.encode", "snapshot", "lpm.flood"} {
		if _, err := parseArgs([]string{"-journal", "-journal-kinds", ok}); err != nil {
			t.Errorf("kind %q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"net.", "lpm.siblings", "kernelspawn", "net,,kernel.spawn"} {
		if _, err := parseArgs([]string{"-journal", "-journal-kinds", bad}); err == nil {
			t.Errorf("kind %q accepted, want rejection", bad)
		}
	}
}
