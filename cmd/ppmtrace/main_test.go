package main

import "testing"

func TestTraceDemoRuns(t *testing.T) {
	if err := run(2, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDemoWithMetrics(t *testing.T) {
	if err := run(2, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDemoWithSpansAndMoreHosts(t *testing.T) {
	if err := run(5, true, false); err != nil {
		t.Fatal(err)
	}
}
