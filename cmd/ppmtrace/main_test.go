package main

import "testing"

func TestTraceDemoRuns(t *testing.T) {
	if err := run(false); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDemoWithMetrics(t *testing.T) {
	if err := run(true); err != nil {
		t.Fatal(err)
	}
}
