package main

import "testing"

func TestTraceDemoRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
