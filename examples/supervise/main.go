// Supervise: resilient computations layered on the PPM's basic
// mechanism, the extension the paper's Section 5 sketches ("control
// would have to be carefully transferred to another host ... robust
// protocols implemented on top of our basic mechanism"). A worker pool
// runs under a restart supervisor; workers die, their host dies, and
// the computation keeps its shape throughout.
package main

import (
	"fmt"
	"log"
	"time"

	"ppm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{
			{Name: "ctrl"}, {Name: "node1"}, {Name: "node2"}, {Name: "node3"},
		},
	})
	if err != nil {
		return err
	}
	cluster.AddUser("felipe")
	sess, err := cluster.Attach("felipe", "ctrl")
	if err != nil {
		return err
	}

	coord, err := sess.Run("ctrl", "coordinator")
	if err != nil {
		return err
	}
	sup := sess.NewSupervisor(5 * time.Second)
	workers := []struct {
		name string
		home string
	}{
		{"shard-1", "node1"},
		{"shard-2", "node2"},
		{"shard-3", "node3"},
	}
	for _, w := range workers {
		id, err := sess.RunChild(w.home, w.name, coord)
		if err != nil {
			return err
		}
		sup.Supervise(ppm.SuperviseSpec{
			Name:   w.name,
			Hosts:  []string{w.home, "node1", "node2", "node3"},
			Parent: coord,
			Policy: ppm.RestartAlways,
		}, id)
	}
	sup.Start()
	defer sup.Stop()
	if err := cluster.Advance(2 * time.Second); err != nil {
		return err
	}

	show := func(label string) error {
		snap, err := sess.Snapshot()
		if err != nil {
			return err
		}
		fmt.Println(label)
		fmt.Println(snap.Render())
		return nil
	}
	if err := show("initial shape:"); err != nil {
		return err
	}

	// A worker dies of natural causes.
	id, _ := sup.Current("shard-2")
	k, err := cluster.Kernel(id.Host)
	if err != nil {
		return err
	}
	fmt.Printf("*** %s crashes (exit 1) ***\n\n", id)
	if err := k.Exit(id.PID, 1); err != nil {
		return err
	}
	if err := cluster.Advance(15 * time.Second); err != nil {
		return err
	}
	if err := show("after the restart:"); err != nil {
		return err
	}

	// A whole node goes down: its shard fails over elsewhere.
	fmt.Println("*** node1 crashes ***")
	fmt.Println()
	if err := cluster.Crash("node1"); err != nil {
		return err
	}
	if err := cluster.Advance(30 * time.Second); err != nil {
		return err
	}
	if err := show("after the failover:"); err != nil {
		return err
	}

	cur, _ := sup.Current("shard-1")
	fmt.Printf("shard-1 now lives on %s; %d restart(s) total\n", cur.Host, sup.Restarts)
	fmt.Println("\nsupervision log:")
	for _, e := range sup.Events {
		fmt.Println("  " + e)
	}
	return nil
}
