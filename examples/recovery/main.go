// Recovery: the failure scenarios of the paper's Section 5 —
// a host crash that turns the genealogy into a forest, CCS failover
// along the user's .recovery list, a network partition producing two
// CCSs, the low-frequency probing that rejoins them after the heal,
// and the time-to-die shutdown of a fully isolated LPM.
package main

import (
	"fmt"
	"log"
	"time"

	"ppm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{
			{Name: "alpha"}, {Name: "beta"}, {Name: "gamma"}, {Name: "delta"},
		},
		LPM: ppm.LPMConfig{
			Recovery: ppm.RecoveryConfig{
				TimeToDie:  2 * time.Minute,
				ProbeEvery: 20 * time.Second,
				RetryEvery: 15 * time.Second,
			},
		},
	}
	cluster, err := ppm.NewCluster(cfg)
	if err != nil {
		return err
	}
	cluster.AddUser("felipe")
	// The .recovery file: the user's home machines in priority order.
	cluster.SetRecoveryList("felipe", "alpha", "beta", "gamma")

	sess, err := cluster.Attach("felipe", "alpha")
	if err != nil {
		return err
	}
	root, err := sess.Run("alpha", "simulation")
	if err != nil {
		return err
	}
	if _, err := sess.RunChild("beta", "worker-b", root); err != nil {
		return err
	}
	if _, err := sess.RunChild("gamma", "worker-g", root); err != nil {
		return err
	}
	if _, err := sess.RunChild("delta", "worker-d", root); err != nil {
		return err
	}
	if err := cluster.Advance(2 * time.Second); err != nil {
		return err
	}

	showCCS := func(label string) {
		fmt.Printf("%s\n", label)
		for _, h := range []string{"alpha", "beta", "gamma", "delta"} {
			if m, ok := cluster.ManagerOn(h, "felipe"); ok {
				fmt.Printf("  %-6s ccs=%-6s state=%v\n",
					h, m.Recovery().CCS(), m.Recovery().State())
			} else {
				fmt.Printf("  %-6s (no LPM)\n", h)
			}
		}
	}
	showCCS("initial state (alpha is the CCS):")

	// --- scenario 1: the CCS host crashes ---
	fmt.Println("\n*** alpha crashes ***")
	if err := cluster.Crash("alpha"); err != nil {
		return err
	}
	if err := cluster.Advance(90 * time.Second); err != nil {
		return err
	}
	showCCS("after the crash (beta took over per the .recovery list):")

	sb, err := cluster.Attach("felipe", "beta")
	if err != nil {
		return err
	}
	snap, err := sb.Snapshot()
	if err != nil {
		return err
	}
	fmt.Println("\nthe snapshot from beta is now a forest (alpha's records lost):")
	fmt.Println(snap.Render())

	// --- scenario 2: partition {beta} | {gamma} ---
	fmt.Println("*** partition: beta,delta | gamma ***")
	if err := cluster.Partition([]string{"beta", "delta"}, []string{"gamma"}); err != nil {
		return err
	}
	if err := cluster.Advance(2 * time.Minute); err != nil {
		return err
	}
	showCCS("during the partition (each side has a coordinator):")

	fmt.Println("\n*** partition heals ***")
	cluster.Heal()
	if err := cluster.Advance(2 * time.Minute); err != nil {
		return err
	}
	showCCS("after the heal (low-frequency probing rejoined the sides):")

	// --- scenario 3: total isolation and time-to-die ---
	// delta is NOT in the .recovery file. Cut it off from every home
	// machine: with nobody on the list reachable and no manual contact,
	// "the appropriate action is to close down all the activities".
	fmt.Println("\n*** delta is partitioned away from every home machine ***")
	if err := cluster.Partition([]string{"delta"}, []string{"beta", "gamma"}); err != nil {
		return err
	}
	if err := cluster.Advance(45 * time.Second); err != nil {
		return err
	}
	showCCS("delta seeking/isolated:")
	if err := cluster.Advance(5 * time.Minute); err != nil {
		return err
	}
	if _, ok := cluster.ManagerOn("delta", "felipe"); !ok {
		fmt.Println("\ntime-to-die expired: delta's LPM terminated the user's local")
		fmt.Println("processes and exited, exactly as the paper prescribes.")
	}
	procs, err := cluster.Processes("delta", "felipe")
	if err != nil {
		return err
	}
	live := 0
	for _, p := range procs {
		if p.State.String() == "running" || p.State.String() == "stopped" {
			live++
		}
	}
	fmt.Printf("live user processes left on delta: %d\n", live)
	fmt.Println("\nmeanwhile gamma — a host in the .recovery file — continues")
	fmt.Println("operating with no bound in time, as the paper prescribes:")
	if m, ok := cluster.ManagerOn("gamma", "felipe"); ok {
		fmt.Printf("  gamma  ccs=%s state=%v\n", m.Recovery().CCS(), m.Recovery().State())
	}
	return nil
}
