// Quickstart: build a two-host installation, attach a session, start a
// distributed computation, inspect it, control it across machine
// boundaries, and read the preserved record of an exited process.
package main

import (
	"fmt"
	"log"
	"time"

	"ppm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A VAX 11/780 and a VAX 11/750 on one Ethernet.
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{
			{Name: "vax1", Type: ppm.VAX780},
			{Name: "vax2", Type: ppm.VAX750},
		},
	})
	if err != nil {
		return err
	}
	cluster.AddUser("felipe")

	// Attaching creates the Local Process Manager on demand through the
	// inetd -> pmd exchange (the paper's Figure 2).
	sess, err := cluster.Attach("felipe", "vax1")
	if err != nil {
		return err
	}

	// Start a computation: a local coordinator with a remote worker.
	root, err := sess.Run("vax1", "coordinator")
	if err != nil {
		return err
	}
	worker, err := sess.RunChild("vax2", "worker", root)
	if err != nil {
		return err
	}
	fmt.Printf("started %s and %s\n\n", root, worker)
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}

	// The snapshot shows the genealogy across both machines.
	snap, err := sess.Snapshot()
	if err != nil {
		return err
	}
	fmt.Println("genealogy:")
	fmt.Println(snap.Render())

	// Control across machine boundaries: stop, resume, kill.
	if err := sess.Stop(worker); err != nil {
		return err
	}
	fmt.Printf("stopped %s\n", worker)
	if err := sess.Foreground(worker); err != nil {
		return err
	}
	fmt.Printf("resumed %s in the foreground\n", worker)
	if err := sess.Kill(worker); err != nil {
		return err
	}
	fmt.Printf("killed %s\n\n", worker)

	// The LPM preserved the exited worker's resource consumption.
	info, err := sess.Stats(worker)
	if err != nil {
		return err
	}
	fmt.Printf("exited worker: state=%s exitCode=%d syscalls=%d\n",
		info.State, info.ExitCode, info.Rusage.Syscalls)

	// The exited process still appears in the snapshot, marked.
	snap, err = sess.Snapshot()
	if err != nil {
		return err
	}
	fmt.Println("\nfinal genealogy:")
	fmt.Println(snap.Render())
	return nil
}
