// Pipeline: the workload the paper's introduction motivates — a
// multiple-process program whose components execute on several
// machines, beyond the shell's pipeline paradigm. A coordinator fans
// work out to workers on three hosts (arbitrary genealogical
// structure), the user pauses the whole computation with one broadcast
// software interrupt, resumes it, watches for a worker's exit with a
// history-dependent trigger, and finally tears everything down.
package main

import (
	"fmt"
	"log"
	"time"

	"ppm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{
			{Name: "vax1", Type: ppm.VAX780},
			{Name: "vax2", Type: ppm.VAX750},
			{Name: "sun1", Type: ppm.SunII},
		},
	})
	if err != nil {
		return err
	}
	cluster.AddUser("felipe")
	sess, err := cluster.Attach("felipe", "vax1")
	if err != nil {
		return err
	}

	// Stage 1: a coordinator and a splitter on the home host.
	coord, err := sess.Run("vax1", "make")
	if err != nil {
		return err
	}
	split, err := sess.RunChild("vax1", "splitter", coord)
	if err != nil {
		return err
	}

	// Stage 2: compile workers on every machine, children of the
	// splitter — a genealogy no shell pipeline could track.
	var workers []ppm.GPID
	for _, host := range []string{"vax1", "vax2", "vax2", "sun1"} {
		w, err := sess.RunChild(host, "cc", split)
		if err != nil {
			return err
		}
		workers = append(workers, w)
	}
	// Stage 3: a linker on the fastest machine, child of the
	// coordinator.
	linker, err := sess.RunChild("vax1", "ld", coord)
	if err != nil {
		return err
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}

	snap, err := sess.Snapshot()
	if err != nil {
		return err
	}
	fmt.Println("the distributed build:")
	fmt.Println(snap.Render())

	// A history-dependent trigger: when any worker exits, note it (the
	// paper's "history dependent events ... set by users to trigger
	// process state changes").
	exited := 0
	remove := sess.OnEvent(&ppm.Watch{
		Kind:   ppm.EvExit,
		Action: func(ev ppm.Event) { exited++ },
	})
	defer remove()

	// The machine room gets loud: pause the entire computation with one
	// broadcast interrupt.
	n, err := sess.StopAll()
	if err != nil {
		return err
	}
	fmt.Printf("paused the whole computation: %d processes stopped\n", n)
	if err := cluster.Advance(10 * time.Second); err != nil {
		return err
	}

	// Resume everything.
	n, err = sess.ContinueAll()
	if err != nil {
		return err
	}
	fmt.Printf("resumed: %d processes\n\n", n)

	// One compile worker on vax1 finishes (exits) — the local watch sees
	// its kernel exit event.
	k, err := cluster.Kernel("vax1")
	if err != nil {
		return err
	}
	if err := k.Exit(workers[0].PID, 0); err != nil {
		return err
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}
	fmt.Printf("exit watch fired %d time(s)\n", exited)

	// The linker inherits the fruits; kill the rest of the computation.
	if err := sess.Kill(linker); err != nil {
		return err
	}
	n, err = sess.KillAll()
	if err != nil {
		return err
	}
	fmt.Printf("teardown killed %d remaining processes\n", n)

	snap, err = sess.Snapshot()
	if err != nil {
		return err
	}
	fmt.Println("\nafter teardown (exit records retained):")
	fmt.Println(snap.Render())
	return nil
}
