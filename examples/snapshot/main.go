// Snapshot: reproduces the paper's Figure 1 — the genealogy display of
// a PPM spanning three hosts, with an exited process retained while its
// children live — and then walks the four Figure 5 topologies, timing
// the snapshot over each as in Table 3.
package main

import (
	"fmt"
	"log"
	"time"

	"ppm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := figure1(); err != nil {
		return err
	}
	return figure5()
}

// figure1 builds the paper's Figure 1 state: a logical tree spanning
// three hosts.
func figure1() error {
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "hostA"}, {Name: "hostB"}, {Name: "hostC"}},
	})
	if err != nil {
		return err
	}
	cluster.AddUser("felipe")
	sess, err := cluster.Attach("felipe", "hostA")
	if err != nil {
		return err
	}

	shell, err := sess.Run("hostA", "csh")
	if err != nil {
		return err
	}
	compute, err := sess.RunChild("hostA", "compute", shell)
	if err != nil {
		return err
	}
	if _, err := sess.RunChild("hostB", "worker1", compute); err != nil {
		return err
	}
	if _, err := sess.RunChild("hostB", "worker2", compute); err != nil {
		return err
	}
	monitor, err := sess.RunChild("hostB", "monitor", shell)
	if err != nil {
		return err
	}
	if _, err := sess.RunChild("hostC", "logger", monitor); err != nil {
		return err
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}

	// The compute process exits; its exit information is retained while
	// its children are alive and the snapshot marks it.
	k, err := cluster.Kernel("hostA")
	if err != nil {
		return err
	}
	if err := k.Exit(compute.PID, 0); err != nil {
		return err
	}
	if err := sess.Stop(monitor); err != nil {
		return err
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}

	snap, err := sess.Snapshot()
	if err != nil {
		return err
	}
	fmt.Println("Figure 1 — possible state of a PPM spanning three hosts:")
	fmt.Println(snap.Render())
	return nil
}

// figure5 builds the four PPM topologies and times a snapshot over
// each (Table 3).
func figure5() error {
	fmt.Println("Figure 5 / Table 3 — snapshot time over four PPM topologies")
	rows, err := ppm.RunTable3()
	if err != nil {
		return err
	}
	fmt.Print(ppm.FormatTable3(rows))
	fmt.Println("\n(6 user processes on every remote host, as in the paper;")
	fmt.Println(" absolute values are calibrated to 1986 hardware, the shape")
	fmt.Println(" — star barely above a single link, chains far above — holds.)")
	return nil
}
