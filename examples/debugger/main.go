// Debugger: the paper notes that "the services of the PPM can be used
// by a debugger, as the granularity of event tracing is user-settable."
// This example builds a tiny event-driven debugger on the PPM: it
// adopts an already running process, raises tracing to full
// granularity, sets a breakpoint-like watch on a syscall, stops the
// process when it fires, inspects state (open files, resource usage,
// history), then resumes and finally detaches.
package main

import (
	"fmt"
	"log"
	"time"

	"ppm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "vax1"}},
	})
	if err != nil {
		return err
	}
	cluster.AddUser("felipe")
	sess, err := cluster.Attach("felipe", "vax1")
	if err != nil {
		return err
	}
	k, err := cluster.Kernel("vax1")
	if err != nil {
		return err
	}

	// A process started outside the PPM — the debuggee.
	target, err := k.Spawn("suspect", "felipe")
	if err != nil {
		return err
	}
	fmt.Printf("debuggee: pid %d (started outside the PPM)\n", target.PID)

	// Attach: adopt it and raise tracing to the finest granularity.
	if err := sess.Adopt(target.PID); err != nil {
		return err
	}
	if err := sess.SetTraceMask(target.PID, ppm.TraceAll); err != nil {
		return err
	}
	fmt.Println("adopted; trace granularity = all (lifecycle, signals, syscalls, ipc, files)")

	// A breakpoint: when the debuggee performs an "unlink" syscall,
	// stop it on the spot.
	id := ppm.GPID{Host: "vax1", PID: target.PID}
	hit := false
	remove := sess.OnEvent(&ppm.Watch{
		Kind: ppm.EvSyscall,
		Proc: id,
		Action: func(ev ppm.Event) {
			if ev.Detail == "unlink" && !hit {
				hit = true
				fmt.Printf("*** breakpoint: %s called unlink — stopping it\n", ev.Proc)
				//ppmlint:allow errdrop example breakpoint action is best-effort; a lost Stop only means the demo process runs on
				_ = sess.Stop(id)
			}
		},
	})
	defer remove()

	// The debuggee does some work.
	if _, err := k.OpenFD(target.PID, "/tmp/scratch"); err != nil {
		return err
	}
	for _, sc := range []string{"read", "write", "read", "unlink", "write"} {
		if target.State != ppm.Running {
			break // the breakpoint stopped it; no further execution
		}
		if err := k.Syscall(target.PID, sc); err != nil {
			return err
		}
		if err := cluster.Advance(50 * time.Millisecond); err != nil {
			return err
		}
	}
	if err := cluster.Advance(time.Second); err != nil {
		return err
	}

	// Inspect the stopped debuggee.
	info, err := sess.Stats(id)
	if err != nil {
		return err
	}
	fmt.Println("\nstate at the breakpoint:")
	fmt.Print(ppm.FormatStats(info))
	open, err := sess.OpenFiles(id)
	if err != nil {
		return err
	}
	fmt.Print(ppm.FormatFDs(id, open))

	evs, err := sess.History(ppm.HistoryQuery{Proc: id})
	if err != nil {
		return err
	}
	fmt.Println("\nevent history (the debugger's trace):")
	fmt.Print(ppm.FormatTimeline(evs))

	// Resume and detach (granularity back to the default).
	if err := sess.Foreground(id); err != nil {
		return err
	}
	if err := sess.SetTraceMask(target.PID, ppm.TraceDefault); err != nil {
		return err
	}
	fmt.Println("\nresumed in the foreground; tracing back to default granularity")
	return nil
}
