package ppm

import (
	"ppm/internal/lpm"
	"ppm/internal/recovery"
	"ppm/internal/tools"
)

// Public aliases for the tunable configurations, so library users can
// construct every ClusterConfig field from this package alone.
type (
	// LPMConfig tunes every Local Process Manager in a cluster.
	LPMConfig = lpm.Config
	// RecoveryConfig tunes the CCS crash-recovery machinery.
	RecoveryConfig = recovery.Config
	// IPCStat summarizes one process's message activity.
	IPCStat = tools.IPCStat
)

// Display helpers re-exported from the tools package: the paper's data
// representation tools, usable directly against Session results.

// FormatStats renders one process's resource-consumption report.
func FormatStats(info Info) string { return tools.FormatStats(info) }

// FormatStatsTable renders a multi-process resource summary sorted by
// CPU time.
func FormatStatsTable(infos []Info) string { return tools.FormatStatsTable(infos) }

// FormatFDs renders the open-descriptor display of one process.
func FormatFDs(id GPID, open []string) string { return tools.FormatFDs(id, open) }

// FormatTimeline renders a history trace, one line per event.
func FormatTimeline(events []Event) string { return tools.FormatTimeline(events) }

// FormatSnapshotTable renders a snapshot as an indented process table.
func FormatSnapshotTable(s Snapshot) string { return tools.FormatSnapshotTable(s) }

// AnalyzeIPC reduces a history trace to per-process IPC activity.
func AnalyzeIPC(events []Event) []IPCStat { return tools.AnalyzeIPC(events) }

// FormatIPC renders the IPC activity analysis.
func FormatIPC(stats []IPCStat) string { return tools.FormatIPC(stats) }
