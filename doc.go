// Package ppm is a faithful reimplementation of the Personal Process
// Manager from "The Administration of Distributed Computations in a
// Networked Environment: An Interim Report" (Cabrera, Sechrest,
// Cáceres; ICDCS 1986), together with the simulated 1986 computing
// environment — VAX and Sun hosts running an enhanced 4.3BSD, joined by
// Ethernet segments and gateways — that its evaluation was performed
// on.
//
// The public API has two layers:
//
//   - Cluster builds the networked installation: hosts (with their
//     1986 CPU models), Ethernet segments, system daemons, user
//     accounts and trust. It also drives the discrete-event clock and
//     injects failures (host crashes, network partitions).
//
//   - Session is a user's view of their PPM: it attaches to (or
//     creates, on demand) the user's Local Process Manager on a home
//     host, and offers the paper's facilities — remote process
//     creation, process control across machine boundaries, genealogy
//     snapshots, broadcast software interrupts, exited-process resource
//     statistics, open-descriptor display, event history and
//     history-dependent watches.
//
// Everything runs deterministically on a virtual clock: operations
// advance simulated time by the calibrated costs of the paper's
// hardware, so the elapsed times the paper reports in its Tables 1-3
// can be regenerated exactly (see EXPERIMENTS.md and the benchmarks in
// bench_test.go).
//
// A minimal use:
//
//	cluster, _ := ppm.NewCluster(ppm.ClusterConfig{
//		Hosts: []ppm.HostSpec{{Name: "vax1"}, {Name: "vax2"}},
//	})
//	sess, _ := cluster.Attach("felipe", "vax1")
//	root, _ := sess.Run("vax1", "pipeline")
//	worker, _ := sess.RunChild("vax2", "worker", root)
//	snap, _ := sess.Snapshot()
//	fmt.Println(snap.Render())
//	_ = sess.Stop(worker)
package ppm

// The root package transitively imports every wire, journal, lpm and
// daemon package, so the whole-program halves of the wireop and
// journalkind analyzers (undispatched request ops, dead journal kinds)
// report here, where the accumulated package facts are complete.
//
//ppmlint:protocolroot
