package ppm_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ppm"
)

func TestClusterErrorPaths(t *testing.T) {
	c := twoHostCluster(t)
	if _, err := c.Kernel("ghost"); !errors.Is(err, ppm.ErrUnknownHost) {
		t.Fatalf("Kernel: %v", err)
	}
	if _, err := c.LoadAvg("ghost"); !errors.Is(err, ppm.ErrUnknownHost) {
		t.Fatalf("LoadAvg: %v", err)
	}
	if err := c.Crash("ghost"); !errors.Is(err, ppm.ErrUnknownHost) {
		t.Fatalf("Crash: %v", err)
	}
	if err := c.Restart("ghost"); !errors.Is(err, ppm.ErrUnknownHost) {
		t.Fatalf("Restart: %v", err)
	}
	if err := c.Partition([]string{"ghost"}); err == nil {
		t.Fatal("Partition with unknown host accepted")
	}
	if err := c.SpawnBackgroundLoad("ghost", "felipe", 1, 1, 2); err == nil {
		t.Fatal("SpawnBackgroundLoad on unknown host accepted")
	}
	if err := c.SpawnBackgroundLoad("vax1", "felipe", 1, 3, 2); err == nil {
		t.Fatal("bad duty cycle accepted")
	}
	if _, err := c.Processes("ghost", "felipe"); !errors.Is(err, ppm.ErrUnknownHost) {
		t.Fatalf("Processes: %v", err)
	}
}

func TestClusterSettleAndScheduler(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	id, err := sess.Run("vax2", "job")
	if err != nil {
		t.Fatal(err)
	}
	// With no perpetual workloads the world goes quiet... except the
	// LPM TTL timers re-arm; Settle would run virtual decades. Bound it
	// with the scheduler API instead.
	if c.Scheduler() == nil {
		t.Fatal("scheduler not exposed")
	}
	before := c.Now()
	if err := c.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Now().Sub(before) != time.Second {
		t.Fatal("Advance did not advance")
	}
	procs, err := c.Processes("vax2", "felipe")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range procs {
		if p.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("kernel view missing %v: %+v", id, procs)
	}
}

func TestSessionSignalAllAndSignal(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	a, _ := sess.Run("vax1", "a")
	b, _ := sess.Run("vax2", "b")
	if err := sess.Signal(b, ppm.SIGUSR2); err != nil {
		t.Fatal(err)
	}
	n, err := sess.SignalAll(ppm.SIGUSR1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("signalled %d, want 2", n)
	}
	// User signals do not change state.
	snap, _ := sess.Snapshot()
	for _, id := range []ppm.GPID{a, b} {
		info, _ := snap.Find(id)
		if info.State.String() != "running" {
			t.Fatalf("%v state = %v", id, info.State)
		}
	}
	// But they are recorded in the local history for the local process.
	evs, _ := sess.History(ppm.HistoryQuery{Proc: a})
	seen := false
	for _, ev := range evs {
		if ev.Signal == ppm.SIGUSR1 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("SIGUSR1 not in history")
	}
}

func TestTraceNetworkViaFacade(t *testing.T) {
	c := twoHostCluster(t)
	tc := c.TraceNetwork(0)
	sess, _ := c.Attach("felipe", "vax1")
	if _, err := sess.Run("vax2", "job"); err != nil {
		t.Fatal(err)
	}
	flows := tc.Flows()
	if len(flows) == 0 {
		t.Fatal("no flows captured")
	}
	out := tc.Format()
	if !strings.Contains(out, "vax1") || !strings.Contains(out, "vax2") {
		t.Fatalf("flow format:\n%s", out)
	}
}

func TestMaxStepsGuardsRunaway(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts:    []ppm.HostSpec{{Name: "a"}},
		MaxSteps: 3, // absurdly tight: any real operation exceeds it
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	if _, err := c.Attach("felipe", "a"); err == nil {
		t.Fatal("attach should exhaust the 3-step budget")
	}
}

func TestAttachAtUnknownHost(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	if _, err := sess.AttachAt("ghost"); err == nil {
		t.Fatal("AttachAt unknown host accepted")
	}
}

func TestManagerOnExitedLPMNotReturned(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	m, ok := c.ManagerOn("vax1", "felipe")
	if !ok {
		t.Fatal("manager missing")
	}
	m.Exit()
	_ = sess
	if _, ok := c.ManagerOn("vax1", "felipe"); ok {
		t.Fatal("exited manager still returned")
	}
}
